"""Disk spill store for over-budget join partitions.

When the memory governor (:mod:`repro.memory.budgeted`) decides a
partition does not fit the budget, its row-slices — the coordinates and
ids of both datasets' members — are written to a private temporary
directory as ``.npy`` files (one file per partition, two arrays per
side) and the in-memory member lists are dropped.  Reading a partition
back **consumes** it: the file is deleted as soon as the rows are
rematerialised, so a store holds each spilled partition at most once
and the directory empties as the join drains its spill queue.

Without numpy the store degrades to pickled ``(oid, lo, hi)`` row
tuples (``.pkl``); the lifecycle and accounting are identical.

Failure handling follows the PR 7 shared-memory hygiene rules: any I/O
problem while reading a partition back — the file deleted underneath
us, truncation, corruption — surfaces as :class:`SpillError` naming the
partition and path (never a bare ``FileNotFoundError``), and
:meth:`SpillStore.close` removes the directory unconditionally, so both
successful joins and crashes leave no spill files on disk.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile

from repro.geometry.columnar import HAVE_NUMPY
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject

if HAVE_NUMPY:  # pragma: no branch
    import numpy as np

__all__ = ["SpillError", "SpilledPartition", "SpillStore"]


class SpillError(RuntimeError):
    """A spilled partition could not be written or read back."""


class SpilledPartition:
    """Handle to one partition resident on disk instead of in memory."""

    __slots__ = ("pid", "path", "n_a", "n_b", "file_bytes")

    def __init__(self, pid: int, path: str, n_a: int, n_b: int, file_bytes: int) -> None:
        self.pid = pid
        self.path = path
        self.n_a = n_a
        self.n_b = n_b
        self.file_bytes = file_bytes

    def __repr__(self) -> str:
        return (
            f"SpilledPartition(pid={self.pid}, n_a={self.n_a}, "
            f"n_b={self.n_b}, file_bytes={self.file_bytes})"
        )


def _pack(objects: list[SpatialObject]):
    """Rows of one dataset side as (coords, ids) arrays."""
    dim = objects[0].mbr.dim if objects else 0
    coords = np.empty((len(objects), 2 * dim), dtype=np.float64)
    ids = np.empty(len(objects), dtype=np.int64)
    for row, obj in enumerate(objects):
        coords[row, :dim] = obj.mbr.lo
        coords[row, dim:] = obj.mbr.hi
        ids[row] = obj.oid
    return coords, ids


def _unpack(coords, ids) -> list[SpatialObject]:
    dim = coords.shape[1] // 2
    return [
        SpatialObject(int(oid), MBR(tuple(row[:dim]), tuple(row[dim:])))
        for oid, row in zip(ids.tolist(), coords.tolist())
    ]


class SpillStore:
    """Owns one temporary directory of spilled partition row-slices.

    Use as a context manager (or call :meth:`close` in a ``finally``):
    the directory is created lazily in the constructor and removed —
    with every remaining file — on close, success or crash alike.
    """

    def __init__(self, root: str | None = None) -> None:
        self.directory = tempfile.mkdtemp(prefix="repro-spill-", dir=root)
        self.bytes_written = 0
        self.bytes_read = 0
        self.partitions_written = 0
        self._live = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Remove the spill directory and everything in it.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def live_partitions(self) -> int:
        """Partitions currently on disk (written, not yet read back)."""
        return self._live

    # -- spill / unspill -----------------------------------------------
    def write(
        self,
        pid: int,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
    ) -> SpilledPartition:
        """Spill one partition's rows; the caller drops its references."""
        if self._closed:
            raise SpillError("spill store is closed")
        suffix = "npy" if HAVE_NUMPY else "pkl"
        path = os.path.join(self.directory, f"part{pid:05d}.{suffix}")
        try:
            with open(path, "wb") as fh:
                if HAVE_NUMPY:
                    for side in (objects_a, objects_b):
                        coords, ids = _pack(side)
                        np.save(fh, coords, allow_pickle=False)
                        np.save(fh, ids, allow_pickle=False)
                else:
                    pickle.dump(
                        [
                            [(o.oid, o.mbr.lo, o.mbr.hi) for o in side]
                            for side in (objects_a, objects_b)
                        ],
                        fh,
                    )
            file_bytes = os.path.getsize(path)
        except OSError as exc:
            raise SpillError(f"failed to spill partition {pid} to {path}: {exc}") from exc
        self.bytes_written += file_bytes
        self.partitions_written += 1
        self._live += 1
        return SpilledPartition(pid, path, len(objects_a), len(objects_b), file_bytes)

    def read(
        self, partition: SpilledPartition
    ) -> tuple[list[SpatialObject], list[SpatialObject]]:
        """Unspill one partition — and delete its file (read-once)."""
        try:
            with open(partition.path, "rb") as fh:
                if HAVE_NUMPY:
                    sides = []
                    for _ in range(2):
                        coords = np.load(fh, allow_pickle=False)
                        ids = np.load(fh, allow_pickle=False)
                        sides.append(_unpack(coords, ids))
                    objects_a, objects_b = sides
                else:
                    rows_a, rows_b = pickle.load(fh)
                    objects_a = [
                        SpatialObject(oid, MBR(lo, hi)) for oid, lo, hi in rows_a
                    ]
                    objects_b = [
                        SpatialObject(oid, MBR(lo, hi)) for oid, lo, hi in rows_b
                    ]
        except (OSError, ValueError, EOFError, pickle.UnpicklingError) as exc:
            raise SpillError(
                f"failed to read spilled partition {partition.pid} back from "
                f"{partition.path}: {exc}"
            ) from exc
        if len(objects_a) != partition.n_a or len(objects_b) != partition.n_b:
            raise SpillError(
                f"spilled partition {partition.pid} at {partition.path} is "
                f"truncated: expected {partition.n_a}x{partition.n_b} rows, "
                f"got {len(objects_a)}x{len(objects_b)}"
            )
        self.bytes_read += partition.file_bytes
        self._live -= 1
        try:
            os.unlink(partition.path)
        except OSError:
            pass
        return objects_a, objects_b
