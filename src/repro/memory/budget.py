"""Byte accounting for the memory governor.

:class:`MemoryBudget` is the ``freeMem`` ledger of the AsterixDB-style
spill lifecycle: partitions *charge* their priced footprint while
resident, *release* it when their local join closes, and anything that
does not fit the free headroom spills.  The prices come from the
algorithms' :meth:`~repro.joins.base.SpatialJoinAlgorithm.estimate_bytes`
(the analytic model of :mod:`repro.stats.memory` plus the real columnar
table payload), so the same ledger governs every algorithm.

:class:`SpillMetrics` is a thread-safe counter bundle shared between a
query service and the budgeted joins it launches, so
``SpatialQueryService.stats()`` can report spill activity across
concurrent probes.  :func:`estimate_built_bytes` prices a prepared
:class:`~repro.joins.base.BuiltIndex` for the byte-accounted index
cache.
"""

from __future__ import annotations

import threading

from repro.geometry.columnar import DEFAULT_DIM
from repro.joins.base import BuiltIndex
from repro.stats.memory import object_record_bytes

__all__ = ["MemoryBudget", "SpillMetrics", "estimate_built_bytes", "SPILL_COUNTER_KEYS"]

#: Counter names a budgeted join records in ``stats.extra`` and a
#: service aggregates into ``stats()``.
SPILL_COUNTER_KEYS = (
    "spilled_partitions",
    "spill_bytes_written",
    "spill_bytes_read",
    "unspills",
    "spill_passes",
    "recursive_repartitions",
    "budget_overruns",
)


def validate_max_bytes(max_bytes: object, argument: str = "max_bytes") -> int:
    """A strictly-positive integer byte budget, or ``ValueError`` naming it."""
    if isinstance(max_bytes, bool) or not isinstance(max_bytes, int):
        raise ValueError(
            f"{argument} must be a positive integer byte count, "
            f"got {max_bytes!r}"
        )
    if max_bytes <= 0:
        raise ValueError(f"{argument} must be positive, got {max_bytes}")
    return max_bytes


class MemoryBudget:
    """freeMem-style ledger over a fixed byte budget."""

    __slots__ = ("max_bytes", "used_bytes", "peak_bytes")

    def __init__(self, max_bytes: int) -> None:
        self.max_bytes = validate_max_bytes(max_bytes)
        self.used_bytes = 0
        self.peak_bytes = 0

    @property
    def free_bytes(self) -> int:
        return self.max_bytes - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        """Whether a partition priced at ``nbytes`` fits the headroom."""
        return nbytes <= self.free_bytes

    def charge(self, nbytes: int) -> None:
        """Account a partition as resident."""
        if nbytes < 0:
            raise ValueError(f"cannot charge negative bytes: {nbytes}")
        self.used_bytes += nbytes
        if self.used_bytes > self.peak_bytes:
            self.peak_bytes = self.used_bytes

    def release(self, nbytes: int) -> None:
        """Return a resident partition's charge after its join closes."""
        self.used_bytes = max(0, self.used_bytes - nbytes)

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(used={self.used_bytes}/{self.max_bytes}, "
            f"peak={self.peak_bytes})"
        )


class SpillMetrics:
    """Thread-safe spill counters shared across budgeted joins."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {
            "spilled_joins": 0,
            **{key: 0 for key in SPILL_COUNTER_KEYS},
        }

    def add(self, **counts: int) -> None:
        with self._lock:
            for key, value in counts.items():
                self._counts[key] = self._counts.get(key, 0) + int(value)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


def estimate_built_bytes(built: BuiltIndex) -> int:
    """Resident footprint of a prepared index, for cache byte accounting.

    Sums the real ``nbytes`` of every columnar payload component (tables,
    leaf-order arrays) plus the analytic per-object record cost, and
    never reports less than what the build-phase statistics measured.
    """
    stats_bytes = int(getattr(built.build_stats, "memory_bytes", 0) or 0)
    payload = built.payload
    values = payload.values() if isinstance(payload, dict) else [payload]
    table_bytes = 0
    for value in values:
        nbytes = getattr(value, "nbytes", None)
        if isinstance(nbytes, (int, float)):
            table_bytes += int(nbytes)
    analytic = built.n_build * object_record_bytes(DEFAULT_DIM)
    return max(stats_bytes, table_bytes + analytic)
