"""Memory governor: byte budgets, partition spilling, budgeted joins.

The public surface of the budget subsystem:

- :class:`~repro.memory.budget.MemoryBudget` — freeMem-style ledger
  pricing partitions with the analytic model plus real table bytes;
- :class:`~repro.memory.spill.SpillStore` /
  :class:`~repro.memory.spill.SpillError` — read-once ``.npy`` spill
  files in a self-cleaning temp directory;
- :class:`~repro.memory.budgeted.BudgetedSpatialJoin` — any registered
  join under a byte budget (resident-first, unspill-on-close,
  recursive repartitioning for skew);
- :class:`~repro.memory.budget.SpillMetrics` /
  :func:`~repro.memory.budget.estimate_built_bytes` — the counters and
  index pricing the service layer builds on.

Entry points: ``RunOptions(max_bytes=...)`` / ``REPRO_MAX_BYTES`` for
the benchmark runner, ``SpatialQueryService(max_bytes=...)`` for the
serving tier, ``--max-bytes`` on the CLI.  See docs/service.md.
"""

from repro.memory.budget import (
    SPILL_COUNTER_KEYS,
    MemoryBudget,
    SpillMetrics,
    estimate_built_bytes,
    validate_max_bytes,
)
from repro.memory.budgeted import BudgetedSpatialJoin
from repro.memory.spill import SpillError, SpilledPartition, SpillStore

__all__ = [
    "MemoryBudget",
    "SpillMetrics",
    "SpillError",
    "SpilledPartition",
    "SpillStore",
    "BudgetedSpatialJoin",
    "estimate_built_bytes",
    "validate_max_bytes",
    "SPILL_COUNTER_KEYS",
]
