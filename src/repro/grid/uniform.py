"""Uniform hash grid: the space-oriented partitioning substrate.

PBSM partitions the whole universe with a uniform grid; S3 keeps a
hierarchy of them; TOUCH's local join phase (Algorithm 4) builds one per
inner node.  Because at realistic resolutions (500 cells per dimension in
3D is 1.25 · 10^8 cells) almost all cells are empty, the grid is stored as
a hash map from integer cell coordinates to the list of object references
assigned to the cell.

The grid also implements the *reference-point* deduplication rule
(Dittrich & Seeger): a pair of objects replicated into several common
cells is reported only in the cell that contains the minimum corner of the
intersection of their MBRs, so no result-set deduplication pass (and no
extra memory) is needed.
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, Iterable, Iterator, Sequence

from repro.geometry.mbr import MBR
from repro.stats import memory as memmodel

__all__ = ["UniformGrid"]


class UniformGrid:
    """A uniform grid over ``universe`` stored sparsely as a hash map.

    Exactly one of ``resolution`` and ``cell_size`` must be given:

    - ``resolution``: number of cells per dimension (an int, or one int
      per dimension), as in "PBSM-500";
    - ``cell_size``: target edge length of a cell (a float, or one per
      dimension), as used by TOUCH's local join where the cell must be
      "considerably larger than the average size of the objects".

    Degenerate universe extents (zero width in some dimension) collapse to
    a single cell in that dimension.
    """

    def __init__(
        self,
        universe: MBR,
        resolution: int | Sequence[int] | None = None,
        cell_size: float | Sequence[float] | None = None,
    ) -> None:
        if (resolution is None) == (cell_size is None):
            raise ValueError("specify exactly one of resolution or cell_size")
        dim = universe.dim
        extents = universe.side_lengths()

        if resolution is not None:
            if isinstance(resolution, int):
                resolution = (resolution,) * dim
            resolution = tuple(int(r) for r in resolution)
            if len(resolution) != dim:
                raise ValueError("resolution dimensionality mismatch")
            if any(r < 1 for r in resolution):
                raise ValueError(f"resolution must be >= 1 per dimension, got {resolution}")
        else:
            if isinstance(cell_size, (int, float)):
                cell_size = (float(cell_size),) * dim
            cell_size = tuple(float(s) for s in cell_size)
            if len(cell_size) != dim:
                raise ValueError("cell_size dimensionality mismatch")
            if any(s <= 0 for s in cell_size):
                raise ValueError(f"cell_size must be positive, got {cell_size}")
            resolution = tuple(
                max(1, math.ceil(extent / size)) for extent, size in zip(extents, cell_size)
            )

        self.universe = universe
        self.resolution = resolution
        self.cell_size = tuple(
            extent / res if extent > 0 else 0.0 for extent, res in zip(extents, resolution)
        )
        self._cells: dict[tuple[int, ...], list] = {}
        self._reference_count = 0

    # -- coordinate mathematics ---------------------------------------
    def _axis_index(self, d: int, coordinate: float) -> int:
        """Clamped cell index of ``coordinate`` along dimension ``d``.

        Coordinates outside the universe clamp to the nearest edge cell
        — floor-then-clamp, the exact semantics of the columnar twin
        (:meth:`repro.grid.columnar.ColumnarGrid.cell_indices`), so both
        backends agree on the ownership of out-of-universe objects.
        """
        size = self.cell_size[d]
        if size == 0.0:
            return 0
        raw = math.floor((coordinate - self.universe.lo[d]) / size)
        if raw < 0:
            return 0
        last = self.resolution[d] - 1
        return last if raw > last else raw

    def cell_of_point(self, point: Sequence[float]) -> tuple[int, ...]:
        """Cell coordinates containing ``point`` (clamped to the grid)."""
        return tuple(self._axis_index(d, c) for d, c in enumerate(point))

    def index_ranges(self, mbr: MBR) -> tuple[tuple[int, int], ...]:
        """Inclusive ``(lo, hi)`` cell-index range per dimension for ``mbr``."""
        return tuple(
            (self._axis_index(d, lo_c), self._axis_index(d, hi_c))
            for d, (lo_c, hi_c) in enumerate(zip(mbr.lo, mbr.hi))
        )

    def cells_overlapping(self, mbr: MBR) -> Iterator[tuple[int, ...]]:
        """Yield the coordinates of every cell that ``mbr`` overlaps."""
        ranges = self.index_ranges(mbr)
        return itertools.product(*(range(lo, hi + 1) for lo, hi in ranges))

    def cell_count_for(self, mbr: MBR) -> int:
        """Number of cells ``mbr`` overlaps (without materialising them)."""
        count = 1
        for lo, hi in self.index_ranges(mbr):
            count *= hi - lo + 1
        return count

    def cell_mbr(self, coords: Sequence[int]) -> MBR:
        """The spatial region covered by cell ``coords``."""
        lo = tuple(
            self.universe.lo[d] + coords[d] * self.cell_size[d] for d in range(len(coords))
        )
        hi = tuple(
            self.universe.lo[d] + (coords[d] + 1) * self.cell_size[d]
            if self.cell_size[d] > 0
            else self.universe.hi[d]
            for d in range(len(coords))
        )
        return MBR(lo, hi)

    # -- population -----------------------------------------------------
    def insert(self, item: object, mbr: MBR) -> int:
        """Assign ``item`` to every cell its ``mbr`` overlaps.

        Returns the number of cells the item was stored in (1 means no
        replication).  This is PBSM's *multiple assignment*.
        """
        cells = self._cells
        count = 0
        for coords in self.cells_overlapping(mbr):
            bucket = cells.get(coords)
            if bucket is None:
                cells[coords] = [item]
            else:
                bucket.append(item)
            count += 1
        self._reference_count += count
        return count

    def items_in_cell(self, coords: tuple[int, ...]) -> list:
        """Object references stored in cell ``coords`` (empty if none)."""
        return self._cells.get(coords, [])

    def non_empty_cells(self) -> Iterable[tuple[tuple[int, ...], list]]:
        """Iterate over ``(coords, items)`` for every populated cell."""
        return self._cells.items()

    def __contains__(self, coords: Hashable) -> bool:
        return coords in self._cells

    def __len__(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    @property
    def reference_count(self) -> int:
        """Total stored references (> object count means replication)."""
        return self._reference_count

    # -- deduplication ---------------------------------------------------
    def owns_pair(self, coords: tuple[int, ...], mbr_a: MBR, mbr_b: MBR) -> bool:
        """Reference-point rule: does cell ``coords`` own the pair?

        The owning cell is the one containing the minimum corner of the
        intersection of the two MBRs.  Calling this for an intersecting
        pair in every common cell returns ``True`` exactly once.
        """
        reference = tuple(max(a, b) for a, b in zip(mbr_a.lo, mbr_b.lo))
        return self.cell_of_point(reference) == tuple(coords)

    # -- accounting ------------------------------------------------------
    def memory_bytes(self) -> int:
        """Analytic footprint: populated cells plus stored references."""
        return memmodel.grid_cells_bytes(len(self._cells), self._reference_count)
