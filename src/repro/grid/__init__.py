"""Space-oriented partitioning substrate (uniform hash grid)."""

from repro.grid.uniform import UniformGrid

__all__ = ["UniformGrid"]
