"""Space-oriented partitioning substrate (uniform hash grid)."""

from repro.grid.uniform import UniformGrid

__all__ = ["UniformGrid", "resolution_label"]


def resolution_label(
    resolution: int | None,
    cell_size: float | None,
    paper_space: float = 1000.0,
) -> str:
    """Display suffix of a grid-overlay configuration.

    Explicit resolutions keep their familiar names (``resolution=500``
    -> ``"500"``).  Cell-size configurations are shown as the equivalent
    resolution over the paper's universe when that ratio is (within
    float noise) an integer — ``cell_size=2.0`` -> ``"500"`` — and fall
    back to the literal cell size otherwise: ``cell_size=3.0`` ->
    ``"cell3"``, not the misleading ``"333.333"``.
    """
    if (resolution is None) == (cell_size is None):
        raise ValueError("specify exactly one of resolution or cell_size")
    if resolution is not None:
        return str(resolution)
    ratio = paper_space / cell_size
    # Snap only to meaningful resolutions (cells wider than the paper
    # universe would round to "0" even though the grid keeps >= 1 cell)
    # and only within actual float noise: a looser tolerance would
    # display materially different cell sizes under the canonical name.
    if round(ratio) >= 1 and abs(ratio - round(ratio)) < 1e-9 * max(1.0, abs(ratio)):
        return str(round(ratio))
    return f"cell{cell_size:g}"
