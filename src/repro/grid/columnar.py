"""Vectorised uniform grid over coordinate tables.

The columnar twin of :class:`repro.grid.uniform.UniformGrid`: the same
geometry (same resolution rules, the same clamped cell indexing, the
same reference-point deduplication rule) but computed for whole tables
at once.  Instead of a hash map of cells it works with flat *entry*
arrays — ``(object_index, cell_key)`` pairs, one per (object, overlapped
cell) — produced without any per-object Python loop, and joins two entry
sets by sorting one side by key and binary-searching the other against
it.

Candidate semantics match the object-model grid joins exactly: a pair is
tested once per cell both objects share, so ``stats.comparisons`` of a
columnar grid join equals the object path's count bit for bit.
"""

from __future__ import annotations

from repro.geometry.columnar import (
    CoordinateTable,
    DEFAULT_CANDIDATE_CHUNK,
    chunk_boundaries,
    concat_ranges,
    require_numpy,
)

try:  # pragma: no cover - mirrored from repro.geometry.columnar
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = [
    "ColumnarGrid",
    "entry_join_candidates",
    "cell_join_candidates",
    "grid_join_pairs",
    "sort_entries",
    "probe_join_candidates",
    "grid_probe_pairs",
]


class ColumnarGrid:
    """Cell geometry of a uniform grid, computed in bulk.

    Parameters mirror :class:`~repro.grid.uniform.UniformGrid`: exactly
    one of ``resolution`` (cells per dimension) and ``cell_size`` (target
    cell edge length) must be given; degenerate universe extents collapse
    to one cell in that dimension.  ``lo`` / ``hi`` are the universe
    corners as length-``D`` vectors.
    """

    __slots__ = ("lo", "hi", "resolution", "cell_width", "_radix")

    def __init__(self, lo, hi, resolution=None, cell_size=None) -> None:
        require_numpy()
        if (resolution is None) == (cell_size is None):
            raise ValueError("specify exactly one of resolution or cell_size")
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        dim = self.lo.shape[0]
        extents = self.hi - self.lo

        if resolution is not None:
            res = np.broadcast_to(
                np.asarray(resolution, dtype=np.int64), (dim,)
            ).copy()
            if (res < 1).any():
                raise ValueError(f"resolution must be >= 1 per dimension, got {res}")
        else:
            size = np.broadcast_to(
                np.asarray(cell_size, dtype=np.float64), (dim,)
            ).copy()
            if (size <= 0).any():
                raise ValueError(f"cell_size must be positive, got {size}")
            res = np.maximum(1, np.ceil(extents / size)).astype(np.int64)
        self.resolution = res
        self.cell_width = np.where(extents > 0, extents / res, 0.0)
        # Mixed-radix factors: key = ((i0 * R1) + i1) * R2 + i2 ...
        radix = np.ones(dim, dtype=np.int64)
        for d in range(dim - 2, -1, -1):
            radix[d] = radix[d + 1] * res[d + 1]
        self._radix = radix

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def total_cells(self) -> int:
        """Nominal cell count (most are empty on realistic data)."""
        return int(self.resolution.prod())

    # -- coordinate mathematics ---------------------------------------
    def cell_indices(self, points):
        """Clamped per-dimension cell indices of ``(M, D)`` points.

        Points outside the universe clamp to the nearest edge cell, the
        same ownership semantics as the object-model
        :meth:`~repro.grid.uniform.UniformGrid.cell_of_point`.  The
        clamp happens in float space *before* the integer cast: casting
        first overflowed int64 for coordinates far beyond a fixed
        universe (``np.float64 -> int64`` wraps to ``INT64_MIN``), which
        silently dropped such points into cell 0 instead of the last
        cell and diverged from the object path.
        """
        width = self.cell_width
        safe = np.where(width > 0, width, 1.0)
        raw = np.floor((points - self.lo) / safe)
        raw[:, width <= 0] = 0.0
        last = (self.resolution - 1).astype(np.float64)
        return np.clip(raw, 0.0, last).astype(np.int64)

    def keys_of(self, indices):
        """Mixed-radix scalar key of ``(M, D)`` per-dimension indices."""
        return indices @ self._radix

    def index_ranges(self, table: CoordinateTable):
        """Inclusive ``(lo_idx, hi_idx)`` cell ranges per table row."""
        return self.cell_indices(table.lo), self.cell_indices(table.hi)

    # -- bulk multiple assignment --------------------------------------
    def entries(self, table: CoordinateTable, with_class_masks: bool = False):
        """Flat ``(object_index, cell_key)`` arrays, one entry per cell a
        box overlaps (PBSM's multiple assignment, vectorised).

        The per-object cell blocks are enumerated with the repeat/cumsum
        trick: every object contributes ``prod(hi - lo + 1)`` entries and
        the within-block flat position is unravelled into per-dimension
        offsets with integer strides — no Python loop over objects.

        With ``with_class_masks=True`` a third array is returned: the
        two-layer class mask of each entry, bit ``d`` set iff the cell is
        the one containing the box's low corner along dimension ``d``
        (i.e. the per-dimension offset is zero).  Mask ``2**dim - 1`` is
        the home cell (class A); cleared bits mark replicas entering
        from a lower neighbour (classes B/C/D in 2-D).
        """
        lo_idx, hi_idx = self.index_ranges(table)
        spans = hi_idx - lo_idx + 1
        per_object = spans.prod(axis=1)
        obj_idx, flat_pos = concat_ranges(
            np.zeros(len(table), dtype=np.int64), per_object
        )
        if len(obj_idx) == 0:
            if with_class_masks:
                return obj_idx, flat_pos, flat_pos.copy()
            return obj_idx, flat_pos
        dim = self.dim
        strides = np.ones_like(spans)
        for d in range(dim - 2, -1, -1):
            strides[:, d] = strides[:, d + 1] * spans[:, d + 1]
        keys = np.zeros(len(obj_idx), dtype=np.int64)
        masks = np.zeros(len(obj_idx), dtype=np.int64) if with_class_masks else None
        for d in range(dim):
            offset = (flat_pos // strides[obj_idx, d]) % spans[obj_idx, d]
            keys += (lo_idx[obj_idx, d] + offset) * self._radix[d]
            if masks is not None:
                masks += (offset == 0).astype(np.int64) << d
        if masks is not None:
            return obj_idx, keys, masks
        return obj_idx, keys

    # -- reference-point deduplication ---------------------------------
    def owned_mask(self, candidate_keys, a_lo_rows, b_lo_rows):
        """Which candidates are owned by the cell they were found in.

        The owning cell contains the minimum corner of the intersection
        of the two boxes (Dittrich & Seeger), i.e. the componentwise
        maximum of the two minimum corners — same rule as
        :meth:`repro.grid.uniform.UniformGrid.owns_pair`.
        """
        reference = np.maximum(a_lo_rows, b_lo_rows)
        return self.keys_of(self.cell_indices(reference)) == candidate_keys


def entry_join_candidates(
    keys_a,
    keys_b,
    chunk: int = DEFAULT_CANDIDATE_CHUNK,
):
    """Co-located *entry index* pairs of two flat key arrays, chunked.

    Sorts B's entries by cell key and binary-searches every A entry's
    key window against them; yields ``(entries_a, entries_b)`` index
    arrays into the original entry arrays, one element per (A entry,
    B entry) pair sharing a cell.  Callers look up whatever per-entry
    payload they carry through these indices:
    :func:`cell_join_candidates` the object indices, the two-layer join
    (:mod:`repro.partition.two_layer`) object indices *and* class masks.
    """
    require_numpy()
    if len(keys_a) == 0 or len(keys_b) == 0:
        return
    order_b = np.argsort(keys_b, kind="stable")
    keys_b_sorted = keys_b[order_b]
    starts = np.searchsorted(keys_b_sorted, keys_a, side="left")
    ends = np.searchsorted(keys_b_sorted, keys_a, side="right")
    counts = ends - starts
    if int(counts.sum()) == 0:
        return
    for lo_i, hi_i in chunk_boundaries(counts, chunk):
        entry_idx, window_pos = concat_ranges(starts[lo_i:hi_i], counts[lo_i:hi_i])
        if len(entry_idx) == 0:
            continue
        entry_idx += lo_i
        yield entry_idx, order_b[window_pos]


def sort_entries(keys):
    """Key-sort one entry set once, for repeated probing.

    Returns ``(order, sorted_keys)`` — the stable argsort of ``keys``
    and the keys in that order.  Build-once/probe-many joins sort the
    *build* side's entries at prepare time so that each probe batch only
    pays a binary search of its own (typically much smaller) entry set,
    instead of the one-shot path's per-join sort-and-scan over the full
    build side (:func:`probe_join_candidates`).
    """
    require_numpy()
    order = np.argsort(keys, kind="stable")
    return order, keys[order]


def probe_join_candidates(
    build_order,
    build_sorted_keys,
    probe_keys,
    chunk: int = DEFAULT_CANDIDATE_CHUNK,
):
    """Co-located entry pairs of a presorted build side and a probe batch.

    The probe twin of :func:`entry_join_candidates`: the build side was
    key-sorted once by :func:`sort_entries`; every probe entry's key
    window is binary-searched against it.  Yields ``(entries_build,
    entries_probe)`` index arrays into the original entry arrays — the
    same candidate multiset as ``entry_join_candidates(build, probe)``
    (one element per key-sharing pair), so ``stats.comparisons`` counts
    are identical; only the pair order differs.
    """
    require_numpy()
    if len(build_sorted_keys) == 0 or len(probe_keys) == 0:
        return
    starts = np.searchsorted(build_sorted_keys, probe_keys, side="left")
    ends = np.searchsorted(build_sorted_keys, probe_keys, side="right")
    counts = ends - starts
    if int(counts.sum()) == 0:
        return
    for lo_i, hi_i in chunk_boundaries(counts, chunk):
        probe_idx, window_pos = concat_ranges(starts[lo_i:hi_i], counts[lo_i:hi_i])
        if len(probe_idx) == 0:
            continue
        probe_idx += lo_i
        yield build_order[window_pos], probe_idx


def grid_probe_pairs(
    grid: ColumnarGrid,
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    prepared_a,
    entries_b,
    stats,
):
    """Probe-side twin of :func:`grid_join_pairs` over a prepared A side.

    ``prepared_a`` is ``(obj_a, keys_a, order_a, sorted_keys_a)`` with
    the sort computed once at prepare time; ``entries_b`` are the probe
    batch's ``(obj_b, keys_b)`` entries.  Candidate generation, the
    intersection test and the reference-point ownership rule are the
    same as the one-shot join, so the returned ``(index_a, index_b)``
    pair set matches it exactly.
    """
    obj_a, keys_a, order_a, sorted_keys_a = prepared_a
    obj_b, keys_b = entries_b
    comparisons = 0
    duplicates = 0
    dedup_checks = 0
    out_a: list = []
    out_b: list = []
    a_lo, a_hi = table_a.lo, table_a.hi
    b_lo, b_hi = table_b.lo, table_b.hi
    for ent_a, ent_b in probe_join_candidates(order_a, sorted_keys_a, keys_b):
        cand_a, cand_b = obj_a[ent_a], obj_b[ent_b]
        cand_keys = keys_a[ent_a]
        comparisons += len(cand_a)
        hit = ((a_lo[cand_a] <= b_hi[cand_b]) & (b_lo[cand_b] <= a_hi[cand_a])).all(
            axis=1
        )
        hit_a, hit_b, hit_keys = cand_a[hit], cand_b[hit], cand_keys[hit]
        owned = grid.owned_mask(hit_keys, a_lo[hit_a], b_lo[hit_b])
        dedup_checks += len(hit_a)
        duplicates += len(hit_a) - int(owned.sum())
        out_a.append(hit_a[owned])
        out_b.append(hit_b[owned])
    stats.comparisons += comparisons
    stats.duplicates_suppressed += duplicates
    stats.dedup_checks += dedup_checks
    empty = np.empty(0, dtype=np.int64)
    if not out_a:
        return empty, empty
    return np.concatenate(out_a), np.concatenate(out_b)


def cell_join_candidates(
    keys_a,
    obj_a,
    keys_b,
    obj_b,
    chunk: int = DEFAULT_CANDIDATE_CHUNK,
):
    """Generate candidate pairs of entries sharing a cell, in chunks.

    ``keys_*`` / ``obj_*`` are flat entry arrays from
    :meth:`ColumnarGrid.entries`.  Yields ``(a_objects, b_objects, keys)``
    blocks where each element is one (A entry, B entry) pair co-located
    in the cell ``key`` — exactly the candidate multiset the object-model
    grid joins test, in bounded-memory chunks.
    """
    for ent_a, ent_b in entry_join_candidates(keys_a, keys_b, chunk):
        yield obj_a[ent_a], obj_b[ent_b], keys_a[ent_a]


def grid_join_pairs(
    grid: ColumnarGrid,
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    entries_a,
    entries_b,
    stats,
):
    """Join two entry sets: intersection test + reference-point dedup.

    The shared core of every columnar grid join (TOUCH's local join and
    PBSM's cell merge): generates the co-located candidate pairs, keeps
    the truly intersecting ones, and lets each cell report only the
    pairs it owns.  Increments ``stats.comparisons`` once per candidate
    and ``stats.duplicates_suppressed`` per disowned intersection;
    returns the owned ``(index_a, index_b)`` pair arrays.
    """
    obj_a, keys_a = entries_a
    obj_b, keys_b = entries_b
    comparisons = 0
    duplicates = 0
    dedup_checks = 0
    out_a: list = []
    out_b: list = []
    a_lo, a_hi = table_a.lo, table_a.hi
    b_lo, b_hi = table_b.lo, table_b.hi
    for cand_a, cand_b, cand_keys in cell_join_candidates(
        keys_a, obj_a, keys_b, obj_b
    ):
        comparisons += len(cand_a)
        hit = ((a_lo[cand_a] <= b_hi[cand_b]) & (b_lo[cand_b] <= a_hi[cand_a])).all(
            axis=1
        )
        hit_a, hit_b, hit_keys = cand_a[hit], cand_b[hit], cand_keys[hit]
        owned = grid.owned_mask(hit_keys, a_lo[hit_a], b_lo[hit_b])
        dedup_checks += len(hit_a)
        duplicates += len(hit_a) - int(owned.sum())
        out_a.append(hit_a[owned])
        out_b.append(hit_b[owned])
    stats.comparisons += comparisons
    stats.duplicates_suppressed += duplicates
    stats.dedup_checks += dedup_checks
    empty = np.empty(0, dtype=np.int64)
    if not out_a:
        return empty, empty
    return np.concatenate(out_a), np.concatenate(out_b)
