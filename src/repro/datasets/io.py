"""Binary dataset serialization, for the §6.3 loading experiment.

The paper's first experiment shows that the time to read the datasets
into memory (≤ 2 seconds) is dwarfed by the join itself (hundreds to
thousands of seconds), so optimising the join is what matters.  This
module gives the harness a realistic load path: a compact little-endian
binary format read back with bulk numpy IO.

Format (version 1)
------------------
``header``: magic ``b"RPRO"``, ``uint32`` version, ``uint32`` dim,
``uint64`` object count, then ``count`` records of ``2 * dim`` float64
(lo corner, hi corner).  Object ids are implicit (record order).
Geometries are not serialized — the loading experiment reads MBRs, which
is also what the paper's join operates on.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.datasets.base import Dataset
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject

__all__ = ["write_dataset", "read_dataset", "FORMAT_MAGIC", "FORMAT_VERSION"]

FORMAT_MAGIC = b"RPRO"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sIIQ")


def write_dataset(dataset: Dataset, path: str | Path) -> int:
    """Serialize ``dataset`` to ``path``; returns bytes written."""
    path = Path(path)
    dim = dataset.dim
    n = len(dataset)
    corners = np.empty((n, 2 * dim), dtype="<f8")
    for i, obj in enumerate(dataset):
        corners[i, :dim] = obj.mbr.lo
        corners[i, dim:] = obj.mbr.hi
    with path.open("wb") as fh:
        fh.write(_HEADER.pack(FORMAT_MAGIC, FORMAT_VERSION, dim, n))
        corners.tofile(fh)
    return _HEADER.size + corners.nbytes


def _read_header(fh: BinaryIO, path: Path) -> tuple[int, int]:
    raw = fh.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise ValueError(f"{path}: truncated header")
    magic, version, dim, count = _HEADER.unpack(raw)
    if magic != FORMAT_MAGIC:
        raise ValueError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported version {version}")
    if dim < 1:
        raise ValueError(f"{path}: invalid dimensionality {dim}")
    return dim, count


def read_dataset(path: str | Path, name: str | None = None) -> Dataset:
    """Deserialize a dataset written by :func:`write_dataset`."""
    path = Path(path)
    with path.open("rb") as fh:
        dim, count = _read_header(fh, path)
        corners = np.fromfile(fh, dtype="<f8", count=count * 2 * dim)
    if corners.size != count * 2 * dim:
        raise ValueError(f"{path}: truncated payload")
    corners = corners.reshape(count, 2 * dim)
    lows = corners[:, :dim].tolist()
    highs = corners[:, dim:].tolist()
    objects = [
        SpatialObject(i, MBR(lo, hi)) for i, (lo, hi) in enumerate(zip(lows, highs))
    ]
    return Dataset(objects, name=name or path.stem, metadata={"source": str(path)})
