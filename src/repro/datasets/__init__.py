"""Workload generators, dataset container and binary IO."""

from repro.datasets.base import Dataset
from repro.datasets.io import read_dataset, write_dataset
from repro.datasets.neuroscience import (
    NeuronModelGenerator,
    density_subsets,
    neuroscience_datasets,
)
from repro.datasets.synthetic import (
    DISTRIBUTIONS,
    SPACE_UNITS,
    clustered_boxes,
    gaussian_boxes,
    make_distribution,
    uniform_boxes,
)
from repro.datasets.transform import concat, inflate, reindexed, sample_fraction

__all__ = [
    "Dataset",
    "uniform_boxes",
    "gaussian_boxes",
    "clustered_boxes",
    "make_distribution",
    "DISTRIBUTIONS",
    "SPACE_UNITS",
    "NeuronModelGenerator",
    "neuroscience_datasets",
    "density_subsets",
    "read_dataset",
    "write_dataset",
    "sample_fraction",
    "inflate",
    "reindexed",
    "concat",
]
