"""Synthetic 3D workloads, generated exactly as the paper describes (§6.2).

"We distribute spatial boxes with each side of uniform random length
(between 0 and 1) in a constant space of 1000 space units in each of the
three dimensions", under three distributions:

- **uniform** box positions;
- **Gaussian** positions with μ = 500, σ = 250;
- **clustered**: up to 100 uniformly chosen cluster locations, objects
  scattered around them with a Gaussian (μ = 0, σ = 220) offset.

All generators accept ``dim`` (the paper uses 3; tests also exercise 2)
and a ``seed`` for reproducibility, and clamp boxes into the universe so
grid-based algorithms see a closed world.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject

__all__ = [
    "uniform_boxes",
    "gaussian_boxes",
    "clustered_boxes",
    "make_distribution",
    "DISTRIBUTIONS",
    "SPACE_UNITS",
]

SPACE_UNITS = 1000.0  # the paper's universe edge length


def _universe(space: float, dim: int) -> MBR:
    return MBR((0.0,) * dim, (space,) * dim)


def _boxes_from_arrays(
    lows: np.ndarray, sides: np.ndarray, space: float, name: str, metadata: dict
) -> Dataset:
    """Clamp box origins into the universe and materialise objects."""
    lows = np.clip(lows, 0.0, space - sides)
    highs = lows + sides
    objects = [
        SpatialObject(i, MBR(lo, hi))
        for i, (lo, hi) in enumerate(zip(lows.tolist(), highs.tolist()))
    ]
    dim = lows.shape[1]
    return Dataset(objects, name=name, universe=_universe(space, dim), metadata=metadata)


def uniform_boxes(
    n: int,
    space: float = SPACE_UNITS,
    dim: int = 3,
    side_range: tuple[float, float] = (0.0, 1.0),
    seed: int | None = None,
) -> Dataset:
    """Boxes with uniformly random positions (paper's *uniform* dataset)."""
    rng = np.random.default_rng(seed)
    sides = rng.uniform(side_range[0], side_range[1], size=(n, dim))
    lows = rng.uniform(0.0, 1.0, size=(n, dim)) * (space - sides)
    return _boxes_from_arrays(
        lows,
        sides,
        space,
        name=f"uniform-{n}",
        metadata={"distribution": "uniform", "n": n, "space": space, "seed": seed},
    )


def gaussian_boxes(
    n: int,
    space: float = SPACE_UNITS,
    dim: int = 3,
    mu: float | None = None,
    sigma: float | None = None,
    side_range: tuple[float, float] = (0.0, 1.0),
    seed: int | None = None,
) -> Dataset:
    """Boxes centred on a Gaussian cloud (paper's *Gaussian* dataset).

    The defaults follow §6.2 *relative to the universe*: μ = space/2
    (500 at the paper's 1000 units) and σ = space/4 (250), so
    density-scaled universes keep the same shape.  Positions are clamped
    into the universe, which concentrates mass near the centre and
    produces the highest selectivity of the three synthetic
    distributions (Table 1) — the ordering the experiments assert.
    """
    if mu is None:
        mu = space / 2.0
    if sigma is None:
        sigma = space / 4.0
    rng = np.random.default_rng(seed)
    sides = rng.uniform(side_range[0], side_range[1], size=(n, dim))
    centers = rng.normal(mu, sigma, size=(n, dim))
    lows = centers - sides / 2.0
    return _boxes_from_arrays(
        lows,
        sides,
        space,
        name=f"gaussian-{n}",
        metadata={
            "distribution": "gaussian",
            "n": n,
            "space": space,
            "mu": mu,
            "sigma": sigma,
            "seed": seed,
        },
    )


def clustered_boxes(
    n: int,
    space: float = SPACE_UNITS,
    dim: int = 3,
    n_clusters: int = 100,
    cluster_sigma: float | None = None,
    side_range: tuple[float, float] = (0.0, 1.0),
    seed: int | None = None,
) -> Dataset:
    """Boxes scattered around random cluster centres (paper's *clustered*).

    "The clustered distribution uniformly randomly chooses up to 100
    locations in 3D space around which the objects are distributed with a
    Gaussian distribution (μ = 0, σ = 220)" (§6.2).  The default σ is
    0.22 · space so density-scaled universes keep the same shape.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if cluster_sigma is None:
        cluster_sigma = 0.22 * space
    rng = np.random.default_rng(seed)
    sides = rng.uniform(side_range[0], side_range[1], size=(n, dim))
    cluster_centers = rng.uniform(0.0, space, size=(n_clusters, dim))
    membership = rng.integers(0, n_clusters, size=n)
    centers = cluster_centers[membership] + rng.normal(0.0, cluster_sigma, size=(n, dim))
    lows = centers - sides / 2.0
    return _boxes_from_arrays(
        lows,
        sides,
        space,
        name=f"clustered-{n}",
        metadata={
            "distribution": "clustered",
            "n": n,
            "space": space,
            "n_clusters": n_clusters,
            "cluster_sigma": cluster_sigma,
            "seed": seed,
        },
    )


#: distribution name → generator, as used by the bench harness.
DISTRIBUTIONS = {
    "uniform": uniform_boxes,
    "gaussian": gaussian_boxes,
    "clustered": clustered_boxes,
}


def make_distribution(name: str, n: int, seed: int | None = None, **kwargs) -> Dataset:
    """Generate ``n`` boxes from the named distribution."""
    try:
        generator = DISTRIBUTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown distribution {name!r}; known: {', '.join(DISTRIBUTIONS)}"
        ) from None
    return generator(n, seed=seed, **kwargs)
