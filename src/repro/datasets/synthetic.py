"""Synthetic 3D workloads, generated exactly as the paper describes (§6.2).

"We distribute spatial boxes with each side of uniform random length
(between 0 and 1) in a constant space of 1000 space units in each of the
three dimensions", under three distributions:

- **uniform** box positions;
- **Gaussian** positions with μ = 500, σ = 250;
- **clustered**: up to 100 uniformly chosen cluster locations, objects
  scattered around them with a Gaussian (μ = 0, σ = 220) offset.

All generators accept ``dim`` (the paper uses 3; tests also exercise 2)
and a ``seed`` for reproducibility, and clamp boxes into the universe so
grid-based algorithms see a closed world.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject

__all__ = [
    "uniform_boxes",
    "gaussian_boxes",
    "clustered_boxes",
    "clustered_polygons",
    "clustered_linestrings",
    "make_distribution",
    "DISTRIBUTIONS",
    "SPACE_UNITS",
]

SPACE_UNITS = 1000.0  # the paper's universe edge length


def _universe(space: float, dim: int) -> MBR:
    return MBR((0.0,) * dim, (space,) * dim)


def _boxes_from_arrays(
    lows: np.ndarray, sides: np.ndarray, space: float, name: str, metadata: dict
) -> Dataset:
    """Clamp box origins into the universe and materialise objects."""
    lows = np.clip(lows, 0.0, space - sides)
    highs = lows + sides
    objects = [
        SpatialObject(i, MBR(lo, hi))
        for i, (lo, hi) in enumerate(zip(lows.tolist(), highs.tolist()))
    ]
    dim = lows.shape[1]
    return Dataset(objects, name=name, universe=_universe(space, dim), metadata=metadata)


def uniform_boxes(
    n: int,
    space: float = SPACE_UNITS,
    dim: int = 3,
    side_range: tuple[float, float] = (0.0, 1.0),
    seed: int | None = None,
) -> Dataset:
    """Boxes with uniformly random positions (paper's *uniform* dataset)."""
    rng = np.random.default_rng(seed)
    sides = rng.uniform(side_range[0], side_range[1], size=(n, dim))
    lows = rng.uniform(0.0, 1.0, size=(n, dim)) * (space - sides)
    return _boxes_from_arrays(
        lows,
        sides,
        space,
        name=f"uniform-{n}",
        metadata={"distribution": "uniform", "n": n, "space": space, "seed": seed},
    )


def gaussian_boxes(
    n: int,
    space: float = SPACE_UNITS,
    dim: int = 3,
    mu: float | None = None,
    sigma: float | None = None,
    side_range: tuple[float, float] = (0.0, 1.0),
    seed: int | None = None,
) -> Dataset:
    """Boxes centred on a Gaussian cloud (paper's *Gaussian* dataset).

    The defaults follow §6.2 *relative to the universe*: μ = space/2
    (500 at the paper's 1000 units) and σ = space/4 (250), so
    density-scaled universes keep the same shape.  Positions are clamped
    into the universe, which concentrates mass near the centre and
    produces the highest selectivity of the three synthetic
    distributions (Table 1) — the ordering the experiments assert.
    """
    if mu is None:
        mu = space / 2.0
    if sigma is None:
        sigma = space / 4.0
    rng = np.random.default_rng(seed)
    sides = rng.uniform(side_range[0], side_range[1], size=(n, dim))
    centers = rng.normal(mu, sigma, size=(n, dim))
    lows = centers - sides / 2.0
    return _boxes_from_arrays(
        lows,
        sides,
        space,
        name=f"gaussian-{n}",
        metadata={
            "distribution": "gaussian",
            "n": n,
            "space": space,
            "mu": mu,
            "sigma": sigma,
            "seed": seed,
        },
    )


def clustered_boxes(
    n: int,
    space: float = SPACE_UNITS,
    dim: int = 3,
    n_clusters: int = 100,
    cluster_sigma: float | None = None,
    side_range: tuple[float, float] = (0.0, 1.0),
    seed: int | None = None,
) -> Dataset:
    """Boxes scattered around random cluster centres (paper's *clustered*).

    "The clustered distribution uniformly randomly chooses up to 100
    locations in 3D space around which the objects are distributed with a
    Gaussian distribution (μ = 0, σ = 220)" (§6.2).  The default σ is
    0.22 · space so density-scaled universes keep the same shape.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if cluster_sigma is None:
        cluster_sigma = 0.22 * space
    rng = np.random.default_rng(seed)
    sides = rng.uniform(side_range[0], side_range[1], size=(n, dim))
    cluster_centers = rng.uniform(0.0, space, size=(n_clusters, dim))
    membership = rng.integers(0, n_clusters, size=n)
    centers = cluster_centers[membership] + rng.normal(0.0, cluster_sigma, size=(n, dim))
    lows = centers - sides / 2.0
    return _boxes_from_arrays(
        lows,
        sides,
        space,
        name=f"clustered-{n}",
        metadata={
            "distribution": "clustered",
            "n": n,
            "space": space,
            "n_clusters": n_clusters,
            "cluster_sigma": cluster_sigma,
            "seed": seed,
        },
    )


def clustered_polygons(
    n: int,
    space: float = SPACE_UNITS,
    n_clusters: int = 100,
    cluster_sigma: float | None = None,
    vertex_range: tuple[int, int] = (3, 12),
    radius_range: tuple[float, float] = (0.1, 0.5),
    seed: int | None = None,
) -> Dataset:
    """Clustered random 2-D polygons with exact shape payloads.

    Star-shaped rings: random radii at sorted random angles around a
    clustered centre, which guarantees a simple (non-self-intersecting)
    polygon at any vertex count.  ``vertex_range`` bounds the vertex
    count per object; ``radius_range`` controls object size and with it
    join selectivity — the default maximum radius of 0.5 caps every
    MBR side at 1.0, the same per-object extent invariant the box
    distributions satisfy.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if vertex_range[0] < 3:
        raise ValueError(f"polygons need >= 3 vertices, got range {vertex_range}")
    if cluster_sigma is None:
        cluster_sigma = 0.22 * space
    from repro.geometry.shapes import Polygon

    rng = np.random.default_rng(seed)
    cluster_centers = rng.uniform(0.0, space, size=(n_clusters, 2))
    membership = rng.integers(0, n_clusters, size=n)
    centers = cluster_centers[membership] + rng.normal(0.0, cluster_sigma, size=(n, 2))
    centers = np.clip(centers, 0.0, space)
    counts = rng.integers(vertex_range[0], vertex_range[1] + 1, size=n)
    objects = []
    for i in range(n):
        k = int(counts[i])
        angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=k))
        radii = rng.uniform(radius_range[0], radius_range[1], size=k)
        xs = centers[i, 0] + radii * np.cos(angles)
        ys = centers[i, 1] + radii * np.sin(angles)
        shape = Polygon(list(zip(xs.tolist(), ys.tolist())), oid=i)
        objects.append(SpatialObject(i, shape.mbr(), shape))
    return Dataset(
        objects,
        name=f"polygons-{n}",
        universe=None,  # tight bound: radii may poke past the clamped centres
        metadata={
            "distribution": "polygons",
            "n": n,
            "space": space,
            "n_clusters": n_clusters,
            "cluster_sigma": cluster_sigma,
            "vertex_range": vertex_range,
            "radius_range": radius_range,
            "seed": seed,
        },
    )


def clustered_linestrings(
    n: int,
    space: float = SPACE_UNITS,
    n_clusters: int = 100,
    cluster_sigma: float | None = None,
    segment_range: tuple[int, int] = (1, 8),
    step_range: tuple[float, float] = (0.04, 0.12),
    seed: int | None = None,
) -> Dataset:
    """Clustered random 2-D polylines (trajectory-style workload).

    Each linestring starts at a clustered point and takes
    ``segment_range`` random-walk steps of ``step_range`` length, so
    vertex counts stay bounded and selectivity tracks the step length.
    The default 8 × 0.12 walk caps every MBR side at 0.96 — inside the
    unit per-object extent the box distributions guarantee.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if segment_range[0] < 1:
        raise ValueError(f"linestrings need >= 1 segment, got range {segment_range}")
    if step_range[0] <= 0.0:
        raise ValueError(f"step lengths must be positive, got range {step_range}")
    if cluster_sigma is None:
        cluster_sigma = 0.22 * space
    from repro.geometry.shapes import LineString

    rng = np.random.default_rng(seed)
    cluster_centers = rng.uniform(0.0, space, size=(n_clusters, 2))
    membership = rng.integers(0, n_clusters, size=n)
    starts = cluster_centers[membership] + rng.normal(0.0, cluster_sigma, size=(n, 2))
    starts = np.clip(starts, 0.0, space)
    counts = rng.integers(segment_range[0], segment_range[1] + 1, size=n)
    objects = []
    for i in range(n):
        k = int(counts[i])
        headings = rng.uniform(0.0, 2.0 * np.pi, size=k)
        steps = rng.uniform(step_range[0], step_range[1], size=k)
        dx = np.cumsum(steps * np.cos(headings))
        dy = np.cumsum(steps * np.sin(headings))
        xs = np.concatenate(([starts[i, 0]], starts[i, 0] + dx))
        ys = np.concatenate(([starts[i, 1]], starts[i, 1] + dy))
        shape = LineString(list(zip(xs.tolist(), ys.tolist())), oid=i)
        objects.append(SpatialObject(i, shape.mbr(), shape))
    return Dataset(
        objects,
        name=f"lines-{n}",
        universe=None,
        metadata={
            "distribution": "lines",
            "n": n,
            "space": space,
            "n_clusters": n_clusters,
            "cluster_sigma": cluster_sigma,
            "segment_range": segment_range,
            "step_range": step_range,
            "seed": seed,
        },
    )


#: distribution name → generator, as used by the bench harness.
DISTRIBUTIONS = {
    "uniform": uniform_boxes,
    "gaussian": gaussian_boxes,
    "clustered": clustered_boxes,
    "polygons": clustered_polygons,
    "lines": clustered_linestrings,
}


def make_distribution(name: str, n: int, seed: int | None = None, **kwargs) -> Dataset:
    """Generate ``n`` boxes from the named distribution."""
    try:
        generator = DISTRIBUTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown distribution {name!r}; known: {', '.join(DISTRIBUTIONS)}"
        ) from None
    return generator(n, seed=seed, **kwargs)
