"""Dataset container shared by generators, IO and the bench harness."""

from __future__ import annotations

from typing import Iterator, Sequence, overload

from repro.geometry.columnar import CoordinateTable
from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject

__all__ = ["Dataset"]


class Dataset(Sequence[SpatialObject]):
    """An immutable sequence of spatial objects with provenance metadata.

    Join algorithms accept any sequence of objects; :class:`Dataset` adds
    the universe extent (needed by grid-based algorithms when a fixed
    universe is desired), a human-readable name and generator metadata
    used by the benchmark reports.
    """

    def __init__(
        self,
        objects: Sequence[SpatialObject],
        name: str = "dataset",
        universe: MBR | None = None,
        metadata: dict | None = None,
    ) -> None:
        self._objects = list(objects)
        self.name = name
        self._universe = universe
        self.metadata = dict(metadata or {})

    # -- sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    @overload
    def __getitem__(self, index: int) -> SpatialObject: ...

    @overload
    def __getitem__(self, index: slice) -> "Dataset": ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Dataset(
                self._objects[index],
                name=self.name,
                universe=self._universe,
                metadata=self.metadata,
            )
        return self._objects[index]

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects)

    def __repr__(self) -> str:
        return f"Dataset({self.name!r}, n={len(self._objects)})"

    # -- spatial extent -----------------------------------------------------
    @property
    def universe(self) -> MBR:
        """Declared universe, or the tight bound of the objects."""
        if self._universe is None:
            if not self._objects:
                raise ValueError(f"dataset {self.name!r} is empty and has no universe")
            self._universe = total_mbr(o.mbr for o in self._objects)
        return self._universe

    @property
    def dim(self) -> int:
        """Dimensionality of the objects."""
        if self._objects:
            return self._objects[0].mbr.dim
        return self.universe.dim

    # -- exact-geometry payloads --------------------------------------------
    @property
    def has_shapes(self) -> bool:
        """Whether any object carries an exact shape payload.

        ``geometry="exact"`` joins require shape-carrying datasets;
        MBR-only objects inside a shaped dataset refine as solid boxes
        over their MBR.
        """
        from repro.geometry.shapes import Shape

        return any(isinstance(obj.geometry, Shape) for obj in self._objects)

    def vertex_table(self):
        """The dataset's shapes in columnar CSR form (``VertexTable``).

        MBR-only objects contribute box shapes over their MBR; the
        refinement-phase twin of :meth:`to_table`.
        """
        from repro.geometry.vertex_table import VertexTable

        return VertexTable.from_objects(self._objects)

    # -- columnar conversion ------------------------------------------------
    def to_table(self) -> CoordinateTable:
        """The dataset as a contiguous coordinate table (columnar form).

        Ids are the object ``oid``\\ s; coordinates round-trip exactly.
        Exact geometries (refinement shapes) are not carried — the table
        is the filtering-phase view of the data (see :meth:`vertex_table`
        for the refinement-phase twin).
        """
        return CoordinateTable.from_objects(self._objects)

    @classmethod
    def from_table(
        cls,
        table: CoordinateTable,
        name: str = "table",
        universe: MBR | None = None,
        metadata: dict | None = None,
    ) -> "Dataset":
        """Materialise a columnar table back into an object dataset."""
        return cls(table.to_objects(), name=name, universe=universe, metadata=metadata)

    # -- derivation -----------------------------------------------------------
    def renamed(self, name: str) -> "Dataset":
        """Same objects under a different name."""
        return Dataset(self._objects, name=name, universe=self._universe, metadata=self.metadata)

    def take(self, n: int) -> "Dataset":
        """First ``n`` objects (used by the density sweeps)."""
        return Dataset(
            self._objects[:n],
            name=f"{self.name}[:{n}]",
            universe=self._universe,
            metadata=self.metadata,
        )
