"""Dataset transformations used by experiments and examples."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.geometry.objects import SpatialObject

__all__ = ["sample_fraction", "inflate", "reindexed", "concat"]


def sample_fraction(dataset: Dataset, fraction: float, seed: int | None = None) -> Dataset:
    """Uniform random subset with ``fraction`` of the objects (≥ 1)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    n = max(1, int(len(dataset) * fraction))
    chosen = rng.choice(len(dataset), size=n, replace=False)
    return Dataset(
        [dataset[int(i)] for i in chosen],
        name=f"{dataset.name}~{fraction:.0%}",
        universe=dataset.universe,
        metadata=dataset.metadata,
    )


def inflate(dataset: Dataset, epsilon: float) -> Dataset:
    """Dataset with every MBR Minkowski-inflated by ``epsilon``."""
    return Dataset(
        [obj.inflated(epsilon) for obj in dataset],
        name=f"{dataset.name}+eps{epsilon:g}",
        universe=dataset.universe.expand(epsilon),
        metadata={**dataset.metadata, "epsilon": epsilon},
    )


def reindexed(dataset: Dataset, start: int = 0) -> Dataset:
    """Dataset with sequential oids starting at ``start``."""
    objects = [
        SpatialObject(start + i, obj.mbr, obj.geometry) for i, obj in enumerate(dataset)
    ]
    return Dataset(objects, name=dataset.name, universe=dataset._universe, metadata=dataset.metadata)


def concat(first: Dataset, second: Dataset, name: str | None = None) -> Dataset:
    """Concatenate two datasets (oids are *not* reassigned)."""
    return Dataset(
        list(first) + list(second),
        name=name or f"{first.name}+{second.name}",
        universe=first.universe.union(second.universe),
        metadata={"parts": [first.name, second.name]},
    )
