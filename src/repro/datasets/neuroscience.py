"""Synthetic neuroscience model: the paper's rat-brain substitute.

The paper's real dataset — a contiguous subset of a rat-brain model with
644K axon cylinders and 1.285M dendrite cylinders in a 285 μm³ volume —
is proprietary.  This generator reproduces the *properties the paper's
experiments depend on*:

- objects are short cylinders (modelled as capsules) forming branching
  neuron morphologies;
- the axon : dendrite cardinality ratio is ≈ 1 : 2;
- tissue is "very densely populated in the center, but extremely sparse
  elsewhere", which is what makes TOUCH's filtering remove a double-digit
  percentage of dataset B (26.58% at ε = 5 in the paper).

Each neuron has a soma placed by a Gaussian around the tissue centre, from
which axonal and dendritic *processes* grow as persistent random walks
with occasional branching, emitting one cylinder per step.  Axon cylinders
form dataset A, dendrite cylinders dataset B.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.base import Dataset
from repro.geometry.distance import Cylinder
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject

__all__ = ["NeuronModelGenerator", "neuroscience_datasets", "density_subsets"]


class NeuronModelGenerator:
    """Procedural generator of axon/dendrite cylinder datasets.

    Parameters
    ----------
    n_neurons:
        Number of neurons in the tissue block.
    space:
        Edge length of the cubic tissue volume.
    soma_sigma:
        Spread of soma positions around the centre, as a fraction of
        ``space``; small values give the dense-core/sparse-rim profile.
    axon_branches / dendrite_branches:
        Processes grown per neuron per kind.  With equal segment counts,
        1 : 2 reproduces the paper's axon : dendrite ratio.
    segments_per_branch:
        Cylinders emitted per process.
    segment_length / radius:
        Cylinder geometry (mean step length; capsule radius).
    branch_probability:
        Per-step probability that a process forks (the fork inherits the
        remaining steps, creating realistic arborisation).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_neurons: int = 60,
        space: float = 1000.0,
        soma_sigma: float = 0.15,
        axon_branches: int = 2,
        dendrite_branches: int = 4,
        segments_per_branch: int = 24,
        segment_length: float = 8.0,
        radius: float = 1.0,
        branch_probability: float = 0.04,
        seed: int | None = None,
    ) -> None:
        if n_neurons < 1:
            raise ValueError(f"n_neurons must be >= 1, got {n_neurons}")
        self.n_neurons = n_neurons
        self.space = space
        self.soma_sigma = soma_sigma
        self.axon_branches = axon_branches
        self.dendrite_branches = dendrite_branches
        self.segments_per_branch = segments_per_branch
        self.segment_length = segment_length
        self.radius = radius
        self.branch_probability = branch_probability
        self.seed = seed

    def universe(self) -> MBR:
        """The tissue volume."""
        return MBR((0.0,) * 3, (self.space,) * 3)

    def generate(self) -> tuple[Dataset, Dataset]:
        """Build the (axons, dendrites) dataset pair."""
        rng = np.random.default_rng(self.seed)
        center = self.space / 2.0
        sigma = self.space * self.soma_sigma

        axon_cylinders: list[Cylinder] = []
        dendrite_cylinders: list[Cylinder] = []
        for _ in range(self.n_neurons):
            soma = np.clip(
                rng.normal(center, sigma, size=3), 0.0, self.space
            )
            for _ in range(self.axon_branches):
                self._grow_process(rng, soma, axon_cylinders)
            for _ in range(self.dendrite_branches):
                self._grow_process(rng, soma, dendrite_cylinders)

        axons = self._to_dataset(axon_cylinders, "neuro-axons")
        dendrites = self._to_dataset(dendrite_cylinders, "neuro-dendrites")
        return axons, dendrites

    # -- morphology -----------------------------------------------------
    def _grow_process(
        self,
        rng: np.random.Generator,
        start: np.ndarray,
        sink: list[Cylinder],
        steps: int | None = None,
    ) -> None:
        """Grow one process as a persistent random walk, emitting cylinders."""
        steps = self.segments_per_branch if steps is None else steps
        position = np.asarray(start, dtype=float)
        direction = self._random_unit(rng)
        for step in range(steps):
            # Persistent direction with angular jitter.
            direction = direction + 0.6 * self._random_unit(rng)
            norm = float(np.linalg.norm(direction))
            if norm == 0.0:
                direction = self._random_unit(rng)
                norm = 1.0
            direction = direction / norm
            length = self.segment_length * float(rng.uniform(0.6, 1.4))
            end = np.clip(position + direction * length, 0.0, self.space)
            sink.append(
                Cylinder(tuple(position), tuple(end), self.radius * float(rng.uniform(0.5, 1.5)))
            )
            position = end
            if rng.uniform() < self.branch_probability and steps - step - 1 > 1:
                self._grow_process(rng, position, sink, steps=steps - step - 1)

    @staticmethod
    def _random_unit(rng: np.random.Generator) -> np.ndarray:
        vec = rng.normal(size=3)
        norm = float(np.linalg.norm(vec))
        if norm == 0.0:
            return np.array([1.0, 0.0, 0.0])
        return vec / norm

    def _to_dataset(self, cylinders: list[Cylinder], name: str) -> Dataset:
        objects = [
            SpatialObject(i, cyl.mbr(), geometry=cyl) for i, cyl in enumerate(cylinders)
        ]
        return Dataset(
            objects,
            name=name,
            universe=self.universe(),
            metadata={
                "distribution": "neuroscience",
                "n_neurons": self.n_neurons,
                "space": self.space,
                "seed": self.seed,
                "kind": "axons" if "axon" in name else "dendrites",
            },
        )


def neuroscience_datasets(
    n_neurons: int = 60,
    seed: int | None = 42,
    **kwargs,
) -> tuple[Dataset, Dataset]:
    """Convenience wrapper: ``(axons, dendrites)`` with default morphology.

    The dendrite dataset is roughly twice the axon dataset, matching the
    644K : 1.285M ratio of the paper's rat-brain subset.
    """
    generator = NeuronModelGenerator(n_neurons=n_neurons, seed=seed, **kwargs)
    return generator.generate()


def density_subsets(
    axons: Dataset,
    dendrites: Dataset,
    fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int | None = 7,
) -> list[tuple[float, Dataset, Dataset]]:
    """Random subsets emulating increasing tissue density (Figure 15).

    "In every step we randomly choose an increasing subset of both
    datasets and join them, emulating increasing density" (§6.7).
    """
    rng = np.random.default_rng(seed)
    axon_order = rng.permutation(len(axons))
    dendrite_order = rng.permutation(len(dendrites))
    subsets = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fractions must be in (0, 1], got {fraction}")
        n_a = max(1, math.floor(len(axons) * fraction))
        n_b = max(1, math.floor(len(dendrites) * fraction))
        subset_a = Dataset(
            [axons[int(i)] for i in axon_order[:n_a]],
            name=f"{axons.name}@{fraction:.0%}",
            universe=axons.universe,
            metadata=axons.metadata,
        )
        subset_b = Dataset(
            [dendrites[int(i)] for i in dendrite_order[:n_b]],
            name=f"{dendrites.name}@{fraction:.0%}",
            universe=dendrites.universe,
            metadata=dendrites.metadata,
        )
        subsets.append((fraction, subset_a, subset_b))
    return subsets
