"""SSSJ — Scalable Sweeping-Based Spatial Join (Arge et al., VLDB '98).

The paper describes SSSJ as the multiple-*matching* alternative to PBSM
(§2.2.3): space is partitioned "into n equi-width strips in one
dimension"; every object that fits entirely inside strip ``n`` goes to
the per-strip set ``L_n``; an object spanning strips ``j..k`` is placed
in the *spanning* set ``L_jk`` instead of being replicated.  When strip
``n`` is joined with an in-memory plane sweep, all spanning sets with
``j <= n <= k`` participate too.

No object is ever replicated (multiple matching), so no deduplication of
candidates within a strip is needed — but a spanning object participates
in several strip sweeps, so pairs involving two spanning objects (or a
spanning and a resident object) could be seen once per shared strip;
they are emitted only in the *first* shared strip, which is cheap to
compute from the strip indexes and needs no result memory.
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro.geometry.mbr import total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import plane_sweep_kernel
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

__all__ = ["SSSJJoin"]


class SSSJJoin(SpatialJoinAlgorithm):
    """Strip-partitioned sweeping join with multiple matching.

    Parameters
    ----------
    strips:
        Number of equi-width strips along ``strip_dim``.
    strip_dim:
        Dimension that is partitioned into strips (the sweep then runs
        along dimension 0 within each strip, or dimension 1 when the
        strips are cut along 0).
    """

    name = "SSSJ"

    def __init__(self, strips: int = 64, strip_dim: int = 1) -> None:
        if strips < 1:
            raise ValueError(f"strips must be >= 1, got {strips}")
        if strip_dim < 0:
            raise ValueError(f"strip_dim must be >= 0, got {strip_dim}")
        self.strips = strips
        self.strip_dim = strip_dim

    def describe(self) -> dict:
        return {"strips": self.strips, "strip_dim": self.strip_dim}

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        dim = self.strip_dim
        if dim >= objects_a[0].mbr.dim:
            raise ValueError(
                f"strip_dim {dim} out of range for {objects_a[0].mbr.dim}-dimensional data"
            )
        universe = total_mbr(o.mbr for o in objects_a).union(
            total_mbr(o.mbr for o in objects_b)
        )
        lo = universe.lo[dim]
        extent = universe.hi[dim] - lo
        strips = self.strips if extent > 0 else 1
        width = extent / strips if strips else 0.0

        def strip_range(obj: SpatialObject) -> tuple[int, int]:
            if width == 0.0:
                return 0, 0
            first = int((obj.mbr.lo[dim] - lo) / width)
            last = int((obj.mbr.hi[dim] - lo) / width)
            return (
                max(0, min(strips - 1, first)),
                max(0, min(strips - 1, last)),
            )

        build_start = time.perf_counter()
        resident_a: dict[int, list[SpatialObject]] = defaultdict(list)
        resident_b: dict[int, list[SpatialObject]] = defaultdict(list)
        spanning_a: dict[int, list[tuple[SpatialObject, int]]] = defaultdict(list)
        spanning_b: dict[int, list[tuple[SpatialObject, int]]] = defaultdict(list)
        ranges: dict[int, tuple[int, int]] = {}

        for obj in objects_a:
            first, last = strip_range(obj)
            if first == last:
                resident_a[first].append(obj)
            else:
                for strip in range(first, last + 1):
                    spanning_a[strip].append((obj, first))
        for obj in objects_b:
            first, last = strip_range(obj)
            if first == last:
                resident_b[first].append(obj)
            else:
                for strip in range(first, last + 1):
                    spanning_b[strip].append((obj, first))
        stats.build_seconds = time.perf_counter() - build_start

        # Note: the spanning dictionaries hold *references per strip* for
        # sweep scheduling, but this is matching, not assignment — every
        # candidate pair is still generated at most once (see below).
        pairs: list[Pair] = []

        join_start = time.perf_counter()
        active_strips = sorted(
            set(resident_a) | set(resident_b) | set(spanning_a) | set(spanning_b)
        )
        for strip in active_strips:
            res_a = resident_a.get(strip, [])
            res_b = resident_b.get(strip, [])
            span_a = spanning_a.get(strip, [])
            span_b = spanning_b.get(strip, [])

            emit = lambda a, b: pairs.append((a.oid, b.oid))  # noqa: E731

            # resident x resident: both live only in this strip.
            if res_a and res_b:
                plane_sweep_kernel(res_a, res_b, stats, emit)
            # resident x spanning: the resident side pins the pair to
            # exactly this strip, so emit unconditionally.
            if res_a and span_b:
                plane_sweep_kernel(res_a, [o for o, _ in span_b], stats, emit)
            if res_b and span_a:
                plane_sweep_kernel([o for o, _ in span_a], res_b, stats, emit)
            # spanning x spanning: both appear in several strips; the
            # pair belongs to the first strip both occupy.
            if span_a and span_b:
                owner_emit_pairs = pairs

                def spanning_emit(a: SpatialObject, b: SpatialObject, _strip=strip):
                    stats.dedup_checks += 1
                    first_common = max(_first_of(a), _first_of(b))
                    if first_common == _strip:
                        owner_emit_pairs.append((a.oid, b.oid))
                    else:
                        stats.duplicates_suppressed += 1

                _first_by_id = {id(o): first for o, first in span_a}
                _first_by_id.update({id(o): first for o, first in span_b})

                def _first_of(obj: SpatialObject) -> int:
                    return _first_by_id[id(obj)]

                plane_sweep_kernel(
                    [o for o, _ in span_a],
                    [o for o, _ in span_b],
                    stats,
                    spanning_emit,
                )
        stats.join_seconds = time.perf_counter() - join_start

        references = (
            sum(len(v) for v in resident_a.values())
            + sum(len(v) for v in resident_b.values())
            + sum(len(v) for v in spanning_a.values())
            + sum(len(v) for v in spanning_b.values())
        )
        stats.replicated_entries = references - len(objects_a) - len(objects_b)
        stats.memory_bytes = memmodel.grid_cells_bytes(
            len(active_strips) * 4, references
        )
        return pairs
