"""Plane sweep join (PS) — the second in-memory baseline.

Sorts both datasets along one dimension and scans them synchronously,
testing every pair whose intervals overlap on the sweep axis.  As the
paper notes, "objects which are not near each other in the other
dimensions may be on the sweep plane at the same time", which is exactly
why PS performs far more comparisons than the partitioned approaches on
3D data.

Memory footprint: the two sorted reference arrays.
"""

from __future__ import annotations

import time

from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import plane_sweep_kernel
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

__all__ = ["PlaneSweepJoin"]


class PlaneSweepJoin(SpatialJoinAlgorithm):
    """Forward-scan sweep along ``sweep_dim`` (default: dimension 0)."""

    name = "PS"

    def __init__(self, sweep_dim: int = 0) -> None:
        if sweep_dim < 0:
            raise ValueError(f"sweep_dim must be >= 0, got {sweep_dim}")
        self.sweep_dim = sweep_dim

    def describe(self) -> dict:
        return {"sweep_dim": self.sweep_dim}

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        dim = self.sweep_dim
        if dim >= objects_a[0].mbr.dim:
            raise ValueError(
                f"sweep_dim {dim} out of range for {objects_a[0].mbr.dim}-dimensional data"
            )

        build_start = time.perf_counter()
        if dim == 0:
            sorted_a = sorted(objects_a, key=lambda o: o.mbr.lo[0])
            sorted_b = sorted(objects_b, key=lambda o: o.mbr.lo[0])
        else:
            # Rotate coordinates so the kernel can always sweep dimension 0.
            sorted_a = sorted(objects_a, key=lambda o: o.mbr.lo[dim])
            sorted_b = sorted(objects_b, key=lambda o: o.mbr.lo[dim])
        stats.build_seconds = time.perf_counter() - build_start

        pairs: list[Pair] = []
        join_start = time.perf_counter()
        if dim == 0:
            plane_sweep_kernel(
                sorted_a,
                sorted_b,
                stats,
                emit=lambda a, b: pairs.append((a.oid, b.oid)),
                presorted=True,
            )
        else:
            self._sweep_other_dim(sorted_a, sorted_b, dim, stats, pairs)
        stats.join_seconds = time.perf_counter() - join_start

        stats.memory_bytes = memmodel.reference_list_bytes(len(objects_a) + len(objects_b))
        return pairs

    @staticmethod
    def _sweep_other_dim(
        sorted_a: list[SpatialObject],
        sorted_b: list[SpatialObject],
        dim: int,
        stats: JoinStatistics,
        pairs: list[Pair],
    ) -> None:
        """Forward scan along an arbitrary dimension."""
        n_a, n_b = len(sorted_a), len(sorted_b)
        comparisons = 0
        i = j = 0
        while i < n_a and j < n_b:
            a = sorted_a[i]
            b = sorted_b[j]
            if a.mbr.lo[dim] <= b.mbr.lo[dim]:
                sweep_end = a.mbr.hi[dim]
                k = j
                while k < n_b and sorted_b[k].mbr.lo[dim] <= sweep_end:
                    comparisons += 1
                    if a.mbr.intersects(sorted_b[k].mbr):
                        pairs.append((a.oid, sorted_b[k].oid))
                    k += 1
                i += 1
            else:
                sweep_end = b.mbr.hi[dim]
                k = i
                while k < n_a and sorted_a[k].mbr.lo[dim] <= sweep_end:
                    comparisons += 1
                    if sorted_a[k].mbr.intersects(b.mbr):
                        pairs.append((sorted_a[k].oid, b.oid))
                    k += 1
                j += 1
        stats.comparisons += comparisons
