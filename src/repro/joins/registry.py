"""Name → algorithm factory registry used by the benchmark harness.

The canonical configurations replicate §6.1 of the paper, expressed in
*scale-invariant* terms so they behave identically on density-scaled
universes (see :mod:`repro.bench.config`):

- R-Tree based approaches (INL, sync traversal): fanout 2;
- S3: fanout 3 with the finest grid cells ≈ 12.35 units wide (≡ 5 levels
  over the paper's 1000-unit universe);
- PBSM: cells of 2 units ("PBSM-500" ≡ 500 cells/dim over 1000 units)
  and 10 units ("PBSM-100");
- TwoLayer: the duplicate-free two-layer partition join at the same two
  tile sizes as PBSM, for like-for-like comparisons;
- TOUCH: fanout 2, 1024 partitions; its local-join grid is sized
  relative to the average object, hence already scale-invariant.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.joins.base import SpatialJoinAlgorithm
from repro.joins.indexed_nested_loop import IndexedNestedLoopJoin
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.pbsm import PBSMJoin
from repro.joins.plane_sweep import PlaneSweepJoin
from repro.joins.quadtree import QuadtreeJoin
from repro.joins.rtree_join import RTreeSyncJoin
from repro.joins.s3 import S3Join
from repro.joins.seeded_tree import SeededTreeJoin
from repro.joins.sssj import SSSJJoin

__all__ = [
    "ALGORITHMS",
    "BACKEND_AWARE",
    "AlgorithmInfo",
    "AlgorithmSpec",
    "available",
    "make_algorithm",
    "algorithm_names",
    "prepare_aware_names",
]


def _touch_factory(**overrides) -> SpatialJoinAlgorithm:
    # Imported lazily: repro.core depends on repro.joins.
    from repro.core.touch import TouchJoin

    return TouchJoin(**overrides)


def _two_layer_factory(**overrides) -> SpatialJoinAlgorithm:
    # Imported lazily: repro.partition depends on repro.joins.
    from repro.partition.two_layer import TwoLayerJoin

    return TwoLayerJoin(**overrides)


#: The paper's S3 configuration in scale-invariant form: fanout 3 with 5
#: levels over 1000 units means the finest grid has 3^4 = 81 cells/dim.
_S3_FINEST_CELL = 1000.0 / 81.0

ALGORITHMS: dict[str, Callable[..., SpatialJoinAlgorithm]] = {
    "NL": NestedLoopJoin,
    "PS": PlaneSweepJoin,
    "PBSM-500": lambda **kw: PBSMJoin(cell_size=2.0, **kw),
    "PBSM-100": lambda **kw: PBSMJoin(cell_size=10.0, **kw),
    "TwoLayer-500": lambda **kw: _two_layer_factory(cell_size=2.0, **kw),
    "TwoLayer-100": lambda **kw: _two_layer_factory(cell_size=10.0, **kw),
    "S3": lambda **kw: S3Join(fanout=3, finest_cell_size=_S3_FINEST_CELL, **kw),
    "INL": lambda **kw: IndexedNestedLoopJoin(fanout=2, **kw),
    "RTree": lambda **kw: RTreeSyncJoin(fanout=2, **kw),
    "SeededTree": SeededTreeJoin,
    "Quadtree": QuadtreeJoin,
    "SSSJ": SSSJJoin,
    "TOUCH": _touch_factory,
}


#: Algorithms accepting a ``backend="object"|"columnar"`` parameter.
#: The other approaches only exist in object form (their per-node
#: traversal does not vectorise naturally); backend sweeps simply run
#: them unchanged.
BACKEND_AWARE = frozenset(
    {"NL", "PBSM-500", "PBSM-100", "TwoLayer-500", "TwoLayer-100", "TOUCH"}
)


@dataclass(frozen=True)
class AlgorithmInfo:
    """Structured description of one registered algorithm variant.

    The introspection record behind :func:`available` — what callers
    (the adaptive optimizer, the CLI, the benchmark sweeps) consult
    instead of ad-hoc name lists.  ``config`` is the variant's default
    parameterisation as a sorted item tuple (the same normalisation as
    :class:`AlgorithmSpec`), so records stay hashable and picklable.

    Attributes
    ----------
    name:
        Registry name, e.g. ``"TwoLayer-500"``.
    config:
        The variant's :meth:`~repro.joins.base.SpatialJoinAlgorithm.describe`
        at default construction, as a sorted ``(key, value)`` tuple.
    backend_aware:
        Whether the variant accepts ``backend="object"|"columnar"|...``.
    prepare_aware:
        Whether :meth:`~repro.joins.base.SpatialJoinAlgorithm.prepare`
        builds structures genuinely reused across probes (``False`` for
        the rebuild-per-probe fallback).
    estimates_bytes:
        Whether the variant prices its own footprint (overrides
        :meth:`~repro.joins.base.SpatialJoinAlgorithm.estimate_bytes`
        beyond the base-class table costs).
    """

    name: str
    config: tuple[tuple[str, object], ...]
    backend_aware: bool
    prepare_aware: bool
    estimates_bytes: bool

    def config_dict(self) -> dict:
        """The default configuration as a plain mapping."""
        return dict(self.config)

    def as_dict(self) -> dict:
        """JSON-safe view (used by reports and the explain surfaces)."""
        return {
            "name": self.name,
            "config": self.config_dict(),
            "backend_aware": self.backend_aware,
            "prepare_aware": self.prepare_aware,
            "estimates_bytes": self.estimates_bytes,
        }


def _info_for(name: str, factory: Callable[..., SpatialJoinAlgorithm]) -> AlgorithmInfo:
    instance = factory()
    return AlgorithmInfo(
        name=name,
        config=tuple(sorted(instance.describe().items())),
        backend_aware=name in BACKEND_AWARE,
        prepare_aware=instance.supports_prepare(),
        estimates_bytes=type(instance).estimate_bytes
        is not SpatialJoinAlgorithm.estimate_bytes,
    )


_AVAILABLE_CACHE: tuple[AlgorithmInfo, ...] | None = None


def available() -> tuple[AlgorithmInfo, ...]:
    """One frozen :class:`AlgorithmInfo` per registered variant.

    Replaces the historical name-list helpers: callers filter on the
    record fields (``info.prepare_aware``, ``info.backend_aware``)
    instead of maintaining parallel name tuples.  The tuple is built
    once per process — registry contents are module constants.
    """
    global _AVAILABLE_CACHE
    if _AVAILABLE_CACHE is None:
        _AVAILABLE_CACHE = tuple(
            _info_for(name, factory) for name, factory in ALGORITHMS.items()
        )
    return _AVAILABLE_CACHE


def algorithm_names() -> list[str]:
    """All registered algorithm names.

    .. deprecated:: use ``[info.name for info in available()]``.
    """
    warnings.warn(
        "algorithm_names() is deprecated; use joins.registry.available() "
        "and read the AlgorithmInfo records",
        DeprecationWarning,
        stacklevel=2,
    )
    return [info.name for info in available()]


def prepare_aware_names() -> list[str]:
    """Registered algorithms whose index is reused across probes.

    .. deprecated:: filter ``available()`` on ``info.prepare_aware``.
    """
    warnings.warn(
        "prepare_aware_names() is deprecated; filter "
        "joins.registry.available() on info.prepare_aware",
        DeprecationWarning,
        stacklevel=2,
    )
    return [info.name for info in available() if info.prepare_aware]


def make_algorithm(name: str, **overrides) -> SpatialJoinAlgorithm:
    """Instantiate a registered algorithm with optional overrides.

    A ``backend`` override is forwarded only to the algorithms in
    :data:`BACKEND_AWARE`; for the object-only approaches it is dropped,
    so a benchmark sweep can pass one backend to every algorithm.
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {', '.join(ALGORITHMS)}"
        ) from None
    if "backend" in overrides and name not in BACKEND_AWARE:
        overrides = {k: v for k, v in overrides.items() if k != "backend"}
    return factory(**overrides)


@dataclass(frozen=True)
class AlgorithmSpec:
    """A picklable recipe for instantiating a registered algorithm.

    The multiprocess engine cannot ship closures or live algorithm
    instances to worker processes; it ships one of these instead — just
    the registry ``name`` plus the keyword ``overrides`` as a sorted
    tuple of items — and each worker rebuilds its own instance with
    :meth:`make`.  Override values must themselves be picklable (the
    registry configurations only use numbers and strings).
    """

    name: str
    overrides: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    @classmethod
    def create(cls, name: str, **overrides) -> "AlgorithmSpec":
        """Validate the name eagerly and normalise the override order."""
        if name not in ALGORITHMS:
            raise KeyError(
                f"unknown algorithm {name!r}; known: {', '.join(ALGORITHMS)}"
            )
        return cls(name, tuple(sorted(overrides.items())))

    def make(self) -> SpatialJoinAlgorithm:
        """Instantiate the algorithm (same path as :func:`make_algorithm`)."""
        return make_algorithm(self.name, **dict(self.overrides))
