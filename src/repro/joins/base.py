"""Common interface of every spatial join algorithm in the library.

All algorithms — the two in-memory baselines (nested loop, plane sweep),
the four disk-era baselines used in memory (PBSM, S3, indexed nested loop,
synchronous R-Tree traversal) and TOUCH itself — implement
:class:`SpatialJoinAlgorithm` and produce a :class:`JoinResult` holding
the intersecting ``(oid_a, oid_b)`` pairs plus a full
:class:`~repro.stats.counters.JoinStatistics`.

The contract, enforced by the test suite for every algorithm:

- **complete**: every intersecting pair is reported;
- **sound**: every reported pair intersects;
- **duplicate-free**: each pair appears exactly once.
"""

from __future__ import annotations

import abc
import time
from typing import ClassVar, Sequence

from repro.geometry.objects import SpatialObject
from repro.stats.counters import JoinStatistics

__all__ = ["JoinResult", "SpatialJoinAlgorithm", "Pair"]

Pair = tuple[int, int]


class JoinResult:
    """Outcome of a spatial join: result pairs plus statistics."""

    __slots__ = ("algorithm", "pairs", "stats", "parameters")

    def __init__(
        self,
        algorithm: str,
        pairs: list[Pair],
        stats: JoinStatistics,
        parameters: dict | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.pairs = pairs
        self.stats = stats
        self.parameters = parameters or {}

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        return (
            f"JoinResult({self.algorithm}, pairs={len(self.pairs)}, "
            f"comparisons={self.stats.comparisons})"
        )

    def pair_set(self) -> frozenset[Pair]:
        """Canonical set view used for cross-algorithm validation."""
        return frozenset(self.pairs)

    def sorted_pairs(self) -> list[Pair]:
        """Pairs in deterministic order."""
        return sorted(self.pairs)

    def selectivity(self, n_a: int, n_b: int) -> float:
        """Join selectivity per the paper's Equation 1."""
        if n_a == 0 or n_b == 0:
            return 0.0
        return len(self.pairs) / (n_a * n_b)


class SpatialJoinAlgorithm(abc.ABC):
    """Template for a two-way spatial intersection join.

    Subclasses implement :meth:`_execute`; :meth:`join` wraps it with
    end-to-end timing (the paper includes index-building time in every
    reported execution time) and fills in the result-pair count.
    """

    #: Registry / display name, e.g. ``"TOUCH"`` or ``"PBSM"``.
    name: ClassVar[str] = "abstract"

    def join(
        self,
        dataset_a: Sequence[SpatialObject],
        dataset_b: Sequence[SpatialObject],
    ) -> JoinResult:
        """Join two datasets and return pairs plus statistics."""
        stats = JoinStatistics()
        start = time.perf_counter()
        pairs = self._execute(list(dataset_a), list(dataset_b), stats)
        stats.total_seconds = time.perf_counter() - start
        stats.result_pairs = len(pairs)
        return JoinResult(self.name, pairs, stats, self.describe())

    @abc.abstractmethod
    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Produce the duplicate-free list of intersecting oid pairs."""

    def describe(self) -> dict:
        """Algorithm parameters, for reports.  Subclasses extend this."""
        return {}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.describe().items())
        return f"{type(self).__name__}({params})"


def dimensionality(
    objects_a: Sequence[SpatialObject], objects_b: Sequence[SpatialObject]
) -> int:
    """Common dimensionality of two (possibly empty) datasets."""
    if objects_a:
        return objects_a[0].mbr.dim
    if objects_b:
        return objects_b[0].mbr.dim
    return 0
