"""Common interface of every spatial join algorithm in the library.

All algorithms — the two in-memory baselines (nested loop, plane sweep),
the four disk-era baselines used in memory (PBSM, S3, indexed nested loop,
synchronous R-Tree traversal) and TOUCH itself — implement
:class:`SpatialJoinAlgorithm` and produce a :class:`JoinResult` holding
the intersecting ``(oid_a, oid_b)`` pairs plus a full
:class:`~repro.stats.counters.JoinStatistics`.

The contract, enforced by the test suite for every algorithm:

- **complete**: every intersecting pair is reported;
- **sound**: every reported pair intersects;
- **duplicate-free**: each pair appears exactly once.

Besides the one-shot :meth:`SpatialJoinAlgorithm.join`, every algorithm
exposes an explicit **build/probe lifecycle** for build-once/probe-many
workloads (the query service in :mod:`repro.service`):
:meth:`~SpatialJoinAlgorithm.prepare` builds the data structures over
the build dataset once and returns an opaque :class:`BuiltIndex`;
:meth:`~SpatialJoinAlgorithm.probe` joins a probe dataset (or a raw
:class:`~repro.geometry.columnar.CoordinateTable` of query MBRs) against
it without rebuilding.  Algorithms that override the ``_build`` /
``_probe`` hooks reuse their index across probes
(:meth:`~SpatialJoinAlgorithm.supports_prepare` is true); the rest fall
back to re-running the full join per probe, so the lifecycle is uniform
across the registry.  Probes never mutate the built index, which makes
concurrent probes from multiple threads safe.
"""

from __future__ import annotations

import abc
import time
from typing import ClassVar, Sequence

from repro.geometry.columnar import CoordinateTable
from repro.geometry.objects import SpatialObject
from repro.stats.counters import JoinStatistics

__all__ = ["JoinResult", "SpatialJoinAlgorithm", "BuiltIndex", "Pair"]

Pair = tuple[int, int]


class BuiltIndex:
    """Opaque handle to a prepared build-side index.

    Produced by :meth:`SpatialJoinAlgorithm.prepare` and consumed by
    :meth:`SpatialJoinAlgorithm.probe`.  ``payload`` is algorithm-private
    state (a TOUCH tree, grid entry arrays, an R-Tree, or — for the
    build-per-probe fallback — simply the retained build objects);
    callers must treat it as opaque.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that built the index; probing with a
        differently-named algorithm raises.
    parameters:
        ``describe()`` of the building algorithm at build time.
    n_build:
        Number of objects indexed.
    reusable:
        ``True`` when the structures are genuinely reused across probes;
        ``False`` for the rebuild-per-probe fallback.
    build_seconds / build_stats:
        Wall-clock spent building and the statistics collected.
    """

    __slots__ = (
        "algorithm",
        "parameters",
        "payload",
        "n_build",
        "reusable",
        "build_seconds",
        "build_stats",
    )

    def __init__(
        self,
        algorithm: str,
        parameters: dict,
        payload: object,
        n_build: int,
        reusable: bool,
        build_seconds: float,
        build_stats: JoinStatistics,
    ) -> None:
        self.algorithm = algorithm
        self.parameters = parameters
        self.payload = payload
        self.n_build = n_build
        self.reusable = reusable
        self.build_seconds = build_seconds
        self.build_stats = build_stats

    def __repr__(self) -> str:
        kind = "reusable" if self.reusable else "rebuild-per-probe"
        return (
            f"BuiltIndex({self.algorithm}, n_build={self.n_build}, {kind}, "
            f"build_seconds={self.build_seconds:.4f})"
        )


class JoinResult:
    """Outcome of a spatial join: result pairs plus statistics."""

    __slots__ = ("algorithm", "pairs", "stats", "parameters")

    def __init__(
        self,
        algorithm: str,
        pairs: list[Pair],
        stats: JoinStatistics,
        parameters: dict | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.pairs = pairs
        self.stats = stats
        self.parameters = parameters or {}

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        return (
            f"JoinResult({self.algorithm}, pairs={len(self.pairs)}, "
            f"comparisons={self.stats.comparisons})"
        )

    def pair_set(self) -> frozenset[Pair]:
        """Canonical set view used for cross-algorithm validation."""
        return frozenset(self.pairs)

    def sorted_pairs(self) -> list[Pair]:
        """Pairs in deterministic order."""
        return sorted(self.pairs)

    def selectivity(self, n_a: int, n_b: int) -> float:
        """Join selectivity per the paper's Equation 1."""
        if n_a == 0 or n_b == 0:
            return 0.0
        return len(self.pairs) / (n_a * n_b)


class SpatialJoinAlgorithm(abc.ABC):
    """Template for a two-way spatial intersection join.

    Subclasses implement :meth:`_execute`; :meth:`join` wraps it with
    end-to-end timing (the paper includes index-building time in every
    reported execution time) and fills in the result-pair count.
    """

    #: Registry / display name, e.g. ``"TOUCH"`` or ``"PBSM"``.
    name: ClassVar[str] = "abstract"

    def join(
        self,
        dataset_a: Sequence[SpatialObject],
        dataset_b: Sequence[SpatialObject],
    ) -> JoinResult:
        """Join two datasets and return pairs plus statistics."""
        stats = JoinStatistics()
        start = time.perf_counter()
        pairs = self._execute(list(dataset_a), list(dataset_b), stats)
        stats.total_seconds = time.perf_counter() - start
        stats.result_pairs = len(pairs)
        return JoinResult(self.name, pairs, stats, self.describe())

    @abc.abstractmethod
    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Produce the duplicate-free list of intersecting oid pairs."""

    # -- filter-refine pipeline -----------------------------------------
    def filter_pairs(
        self,
        dataset_a: Sequence[SpatialObject],
        dataset_b: Sequence[SpatialObject],
    ) -> JoinResult:
        """Filter stage of a filter-refine join: the MBR candidate join.

        Identical to :meth:`join` except the result is understood as
        *candidates* for exact refinement; callers follow up with
        :meth:`refine`, which does the candidate/true-hit/exact
        accounting.  The pure-MBR path never calls either, which keeps
        ``geometry="mbr"`` runs bit-identical to the pre-pipeline
        behaviour.
        """
        return self.join(dataset_a, dataset_b)

    def refine(
        self,
        pairs: Sequence[Pair],
        objects_a: Sequence[SpatialObject],
        objects_b: Sequence[SpatialObject],
        epsilon: float,
        stats: JoinStatistics | None = None,
        backend: str = "auto",
    ) -> list[Pair]:
        """Refine stage: keep candidates whose exact distance is <= epsilon.

        ``objects_a`` / ``objects_b`` must carry **original** (never
        epsilon-inflated) extents — refinement evaluates the true
        shapes, falling back to solid boxes over ``obj.mbr`` for
        objects without shape payloads.  Counters land on ``stats``
        (``candidate_pairs`` / ``false_hit_prunes`` / ``true_hits`` /
        ``exact_tests`` / ``refined_pairs``).
        """
        from repro.refine import RefinePipeline

        pipeline = RefinePipeline(epsilon, backend=backend)
        return pipeline.refine(pairs, objects_a, objects_b, stats=stats)

    # -- build/probe lifecycle -----------------------------------------
    @classmethod
    def supports_prepare(cls) -> bool:
        """Whether :meth:`prepare` builds structures reused across probes.

        ``False`` means the generic fallback is in effect: ``prepare``
        retains the build dataset and every probe re-runs the full join.
        """
        return cls._build is not SpatialJoinAlgorithm._build

    def prepare(self, dataset_a: Sequence[SpatialObject]) -> BuiltIndex:
        """Build the algorithm's index over the build dataset once.

        The returned :class:`BuiltIndex` can be probed any number of
        times — including concurrently from multiple threads — with
        :meth:`probe`; probing never mutates it.  Per the paper's
        ε-reduction, callers join *distance* queries by inflating the
        build dataset before preparing (exactly what
        :class:`repro.service.SpatialQueryService` does).
        """
        objects = list(dataset_a)
        stats = JoinStatistics()
        start = time.perf_counter()
        payload = self._build(objects, stats)
        elapsed = time.perf_counter() - start
        stats.build_seconds = elapsed
        stats.total_seconds = elapsed
        return BuiltIndex(
            algorithm=self.name,
            parameters=self.describe(),
            payload=payload,
            n_build=len(objects),
            reusable=self.supports_prepare(),
            build_seconds=elapsed,
            build_stats=stats,
        )

    def probe(
        self,
        built: BuiltIndex,
        queries: "Sequence[SpatialObject] | CoordinateTable",
    ) -> JoinResult:
        """Join a probe dataset against a prepared index.

        ``queries`` is a sequence of objects or a raw
        :class:`~repro.geometry.columnar.CoordinateTable` of query MBRs;
        tables flow straight into the batched columnar kernels when the
        algorithm implements ``_probe_table`` (the service's vectorised
        MBR-batch path) and are materialised into objects otherwise.
        Result pairs are ``(build oid, probe oid)``; for raw tables the
        probe oid is the table's ``ids`` entry (row index by default).
        """
        if built.algorithm != self.name:
            raise ValueError(
                f"index was prepared by {built.algorithm!r}, cannot probe "
                f"with {self.name!r}"
            )
        stats = JoinStatistics()
        start = time.perf_counter()
        if isinstance(queries, CoordinateTable):
            if type(self)._probe_table is not SpatialJoinAlgorithm._probe_table:
                pairs = self._probe_table(built.payload, queries, stats)
            else:
                pairs = self._probe(built.payload, queries.to_objects(), stats)
        else:
            pairs = self._probe(built.payload, list(queries), stats)
        stats.total_seconds = time.perf_counter() - start
        stats.result_pairs = len(pairs)
        parameters = {**self.describe(), "lifecycle": "probe", "n_build": built.n_build}
        return JoinResult(self.name, pairs, stats, parameters)

    def _build(self, objects_a: list[SpatialObject], stats: JoinStatistics) -> object:
        """Hook: build the reusable index payload over dataset A.

        The default implementation retains the objects themselves — the
        build-per-probe fallback for algorithms without a split
        lifecycle.  Overriding this (and ``_probe``) opts an algorithm
        into genuine index reuse.
        """
        return objects_a

    def _probe(
        self,
        payload: object,
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Hook: join probe objects against a built payload.

        Default (fallback) behaviour re-runs the full join, rebuilding
        every structure — correct for every algorithm, amortising
        nothing.
        """
        return self._execute(list(payload), objects_b, stats)

    def _probe_table(
        self,
        payload: object,
        table_b: CoordinateTable,
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Hook: columnar fast path joining a coordinate table directly.

        Only consulted when overridden; the base :meth:`probe`
        materialises tables into objects otherwise.
        """
        raise NotImplementedError  # pragma: no cover - guarded by probe()

    def estimate_bytes(self, n_a: int, n_b: int, dim: int) -> int:
        """Predicted resident footprint of joining ``n_a`` × ``n_b`` boxes.

        Priced with the analytic model of :mod:`repro.stats.memory` plus
        the real columnar-table payload, *before* any data structure is
        built — this is what the memory governor (:mod:`repro.memory`)
        consults to decide whether a partition fits the budget or must
        spill.  The default covers the structure every algorithm holds:
        both coordinate tables plus one object record per box.  Index
        algorithms override this to add their tree / grid cost.
        """
        from repro.stats.memory import columnar_table_bytes, object_record_bytes

        return (
            columnar_table_bytes(n_a, dim)
            + columnar_table_bytes(n_b, dim)
            + (n_a + n_b) * object_record_bytes(dim)
        )

    def describe(self) -> dict:
        """Algorithm parameters, for reports.  Subclasses extend this."""
        return {}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.describe().items())
        return f"{type(self).__name__}({params})"


def dimensionality(
    objects_a: Sequence[SpatialObject], objects_b: Sequence[SpatialObject]
) -> int:
    """Common dimensionality of two (possibly empty) datasets."""
    if objects_a:
        return objects_a[0].mbr.dim
    if objects_b:
        return objects_b[0].mbr.dim
    return 0
