"""Synchronous R-Tree traversal join (Brinkhoff, Kriegel & Seeger).

Both datasets are indexed (STR bulk loading, as the paper recommends for
non-extreme data) and the two trees are descended in lockstep: node pairs
whose MBRs intersect recurse into their children; leaf pairs are joined
with the plane-sweep local kernel.  Unlike INL, the traversal shares work
across probe objects, which the paper identifies as the reason the
synchronous traversal "is always faster than INL" despite a nearly
identical comparison count.
"""

from __future__ import annotations

import time

from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import LOCAL_KERNELS
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import PackingMethod, RTree
from repro.stats.counters import JoinStatistics

__all__ = ["RTreeSyncJoin"]


class RTreeSyncJoin(SpatialJoinAlgorithm):
    """Dual bulk-loaded R-Trees joined by synchronous traversal.

    Parameters
    ----------
    fanout / leaf_capacity / packing:
        Passed to both :class:`~repro.rtree.rtree.RTree` builds.
    local_kernel:
        Kernel for leaf-leaf pairs; the paper uses the plane sweep.
    """

    name = "RTree"

    def __init__(
        self,
        fanout: int = 2,
        leaf_capacity: int | None = None,
        packing: PackingMethod = "str",
        local_kernel: str = "sweep",
    ) -> None:
        if local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {local_kernel!r}")
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self.packing = packing
        self.local_kernel = local_kernel

    def describe(self) -> dict:
        return {
            "fanout": self.fanout,
            "leaf_capacity": self.leaf_capacity or self.fanout,
            "packing": self.packing,
            "local_kernel": self.local_kernel,
        }

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []

        build_start = time.perf_counter()
        tree_a = RTree(
            objects_a, fanout=self.fanout, leaf_capacity=self.leaf_capacity, method=self.packing
        )
        tree_b = RTree(
            objects_b, fanout=self.fanout, leaf_capacity=self.leaf_capacity, method=self.packing
        )
        stats.build_seconds = time.perf_counter() - build_start

        pairs: list[Pair] = []
        kernel = LOCAL_KERNELS[self.local_kernel]
        emit = lambda a, b: pairs.append((a.oid, b.oid))  # noqa: E731

        join_start = time.perf_counter()
        stats.node_tests += 1
        if tree_a.root.mbr.intersects(tree_b.root.mbr):
            self._traverse(tree_a.root, tree_b.root, stats, kernel, emit)
        stats.join_seconds = time.perf_counter() - join_start

        stats.memory_bytes = tree_a.memory_bytes() + tree_b.memory_bytes()
        return pairs

    # -- build/probe lifecycle -----------------------------------------
    def _build(self, objects_a, stats):
        """Bulk-load A's tree once; each probe packs only its own side."""
        if not objects_a:
            return None
        return RTree(
            objects_a,
            fanout=self.fanout,
            leaf_capacity=self.leaf_capacity,
            method=self.packing,
        )

    def _probe(self, payload, objects_b, stats):
        if payload is None or not objects_b:
            return []
        tree_a = payload
        build_start = time.perf_counter()
        tree_b = RTree(
            objects_b,
            fanout=self.fanout,
            leaf_capacity=self.leaf_capacity,
            method=self.packing,
        )
        stats.build_seconds = time.perf_counter() - build_start

        pairs: list[Pair] = []
        kernel = LOCAL_KERNELS[self.local_kernel]
        emit = lambda a, b: pairs.append((a.oid, b.oid))  # noqa: E731

        join_start = time.perf_counter()
        stats.node_tests += 1
        if tree_a.root.mbr.intersects(tree_b.root.mbr):
            self._traverse(tree_a.root, tree_b.root, stats, kernel, emit)
        stats.join_seconds = time.perf_counter() - join_start
        stats.memory_bytes = tree_a.memory_bytes() + tree_b.memory_bytes()
        return pairs

    @staticmethod
    def _traverse(root_a: RTreeNode, root_b: RTreeNode, stats, kernel, emit) -> None:
        """Iterative lockstep descent over intersecting node pairs.

        Trees of different heights are handled by descending only the
        deeper node once one side reaches its leaves ("fix-height"
        traversal).
        """
        stack = [(root_a, root_b)]
        node_tests = 0
        while stack:
            node_a, node_b = stack.pop()
            if node_a.is_leaf and node_b.is_leaf:
                kernel(node_a.objects, node_b.objects, stats, emit)
                continue
            if node_a.is_leaf:
                for child in node_b.children:
                    node_tests += 1
                    if node_a.mbr.intersects(child.mbr):
                        stack.append((node_a, child))
                continue
            if node_b.is_leaf:
                for child in node_a.children:
                    node_tests += 1
                    if child.mbr.intersects(node_b.mbr):
                        stack.append((child, node_b))
                continue
            for child_a in node_a.children:
                mbr_a = child_a.mbr
                for child_b in node_b.children:
                    node_tests += 1
                    if mbr_a.intersects(child_b.mbr):
                        stack.append((child_a, child_b))
        stats.node_tests += node_tests
