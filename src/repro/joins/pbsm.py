"""PBSM — Partition Based Spatial-Merge join (Patel & DeWitt).

The paper's strongest baseline.  PBSM overlays the universe with a uniform
grid and assigns every object to *all* cells it overlaps (multiple
assignment).  Corresponding cell pairs are then joined locally.  Because
objects are replicated, (a) more comparisons are performed, (b) the memory
footprint grows with replication — the effect behind the paper's "two
orders of magnitude more memory" for PBSM-500 — and (c) results must be
deduplicated.

Like the paper's implementation, deduplication happens *during* the join
via the reference-point method (Dittrich & Seeger), so no additional
result memory is needed.

The two configurations the paper evaluates are ``PBSM(resolution=500)``
(fast, memory-hungry) and ``PBSM(resolution=100)`` (slower, leaner).
"""

from __future__ import annotations

import time

from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.grid.uniform import UniformGrid
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import LOCAL_KERNELS
from repro.stats.counters import JoinStatistics

__all__ = ["PBSMJoin"]


class PBSMJoin(SpatialJoinAlgorithm):
    """Uniform-grid multiple-assignment join.

    Parameters
    ----------
    resolution:
        Number of grid cells per dimension (the paper sweeps 100 and 500
        over its 1000-unit universe).
    cell_size:
        Alternative, scale-invariant configuration: the cell edge length
        in space units.  The paper's PBSM-500 is ``cell_size = 2.0`` and
        PBSM-100 is ``cell_size = 10.0``; configuring by cell size keeps
        the replication factor (and hence the memory/time behaviour)
        identical on density-scaled universes.  Exactly one of
        ``resolution`` / ``cell_size`` may be given.
    local_kernel:
        Kernel joining the object lists of a cell pair; the paper uses the
        plane sweep (``"sweep"``, default).
    universe:
        Optional fixed universe; by default the union of both datasets'
        extents is used.
    """

    name = "PBSM"

    #: The paper's universe edge, used to display cell-size configurations
    #: under their familiar names (cell 2.0 -> "PBSM-500").
    PAPER_SPACE = 1000.0

    def __init__(
        self,
        resolution: int | None = None,
        cell_size: float | None = None,
        local_kernel: str = "sweep",
        universe: MBR | None = None,
    ) -> None:
        if resolution is None and cell_size is None:
            resolution = 500
        if resolution is not None and cell_size is not None:
            raise ValueError("specify at most one of resolution and cell_size")
        if resolution is not None and resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {local_kernel!r}")
        self.resolution = resolution
        self.cell_size = cell_size
        self.local_kernel = local_kernel
        self.universe = universe
        if resolution is not None:
            self.name = f"PBSM-{resolution}"
        else:
            self.name = f"PBSM-{self.PAPER_SPACE / cell_size:g}"

    def describe(self) -> dict:
        return {
            "resolution": self.resolution,
            "cell_size": self.cell_size,
            "local_kernel": self.local_kernel,
        }

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        universe = self.universe
        if universe is None:
            universe = total_mbr(o.mbr for o in objects_a).union(
                total_mbr(o.mbr for o in objects_b)
            )

        build_start = time.perf_counter()
        if self.resolution is not None:
            grid_a = UniformGrid(universe, resolution=self.resolution)
            grid_b = UniformGrid(universe, resolution=self.resolution)
        else:
            grid_a = UniformGrid(universe, cell_size=self.cell_size)
            grid_b = UniformGrid(universe, cell_size=self.cell_size)
        for obj in objects_a:
            grid_a.insert(obj, obj.mbr)
        for obj in objects_b:
            grid_b.insert(obj, obj.mbr)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries = (grid_a.reference_count - len(objects_a)) + (
            grid_b.reference_count - len(objects_b)
        )

        kernel = LOCAL_KERNELS[self.local_kernel]
        pairs: list[Pair] = []
        duplicates = 0

        join_start = time.perf_counter()
        # Iterate the sparser map and probe the denser one.
        if len(grid_a) <= len(grid_b):
            outer, inner, a_side_outer = grid_a, grid_b, True
        else:
            outer, inner, a_side_outer = grid_b, grid_a, False

        for coords, outer_items in outer.non_empty_cells():
            inner_items = inner.items_in_cell(coords)
            if not inner_items:
                continue
            cell_a = outer_items if a_side_outer else inner_items
            cell_b = inner_items if a_side_outer else outer_items

            def emit(a: SpatialObject, b: SpatialObject) -> None:
                nonlocal duplicates
                if grid_a.owns_pair(coords, a.mbr, b.mbr):
                    pairs.append((a.oid, b.oid))
                else:
                    duplicates += 1

            kernel(cell_a, cell_b, stats, emit)
        stats.join_seconds = time.perf_counter() - join_start

        stats.duplicates_suppressed += duplicates
        stats.memory_bytes = grid_a.memory_bytes() + grid_b.memory_bytes()
        return pairs
