"""PBSM — Partition Based Spatial-Merge join (Patel & DeWitt).

The paper's strongest baseline.  PBSM overlays the universe with a uniform
grid and assigns every object to *all* cells it overlaps (multiple
assignment).  Corresponding cell pairs are then joined locally.  Because
objects are replicated, (a) more comparisons are performed, (b) the memory
footprint grows with replication — the effect behind the paper's "two
orders of magnitude more memory" for PBSM-500 — and (c) results must be
deduplicated.

Like the paper's implementation, deduplication happens *during* the join
via the reference-point method (Dittrich & Seeger), so no additional
result memory is needed.

The two configurations the paper evaluates are ``PBSM(resolution=500)``
(fast, memory-hungry) and ``PBSM(resolution=100)`` (slower, leaner).
"""

from __future__ import annotations

import time

from repro.geometry.columnar import (
    CoordinateTable,
    require_numpy,
    resolve_backend,
    validate_backend,
)
from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.grid import resolution_label
from repro.grid.columnar import ColumnarGrid, grid_join_pairs
from repro.grid.uniform import UniformGrid
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import LOCAL_KERNELS
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

try:  # pragma: no cover - optional dependency of the columnar path
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["PBSMJoin"]


class PBSMJoin(SpatialJoinAlgorithm):
    """Uniform-grid multiple-assignment join.

    Parameters
    ----------
    resolution:
        Number of grid cells per dimension (the paper sweeps 100 and 500
        over its 1000-unit universe).
    cell_size:
        Alternative, scale-invariant configuration: the cell edge length
        in space units.  The paper's PBSM-500 is ``cell_size = 2.0`` and
        PBSM-100 is ``cell_size = 10.0``; configuring by cell size keeps
        the replication factor (and hence the memory/time behaviour)
        identical on density-scaled universes.  At most one of
        ``resolution`` / ``cell_size`` may be given; giving neither
        defaults to the paper's ``resolution = 500``.
    local_kernel:
        Kernel joining the object lists of a cell pair; the paper uses the
        plane sweep (``"sweep"``, default).  The columnar backend joins
        cell pairs with the batch intersection primitive instead (every
        co-located pair tested in bulk, i.e. nested-loop comparison
        semantics) — the pair set is identical either way.
    universe:
        Optional fixed universe; by default the union of both datasets'
        extents is used.
    backend:
        ``"auto"`` (columnar when numpy is importable), ``"object"`` or
        ``"columnar"``.
    """

    name = "PBSM"

    #: The paper's universe edge, used to display cell-size configurations
    #: under their familiar names (cell 2.0 -> "PBSM-500").
    PAPER_SPACE = 1000.0

    def __init__(
        self,
        resolution: int | None = None,
        cell_size: float | None = None,
        local_kernel: str = "sweep",
        universe: MBR | None = None,
        backend: str = "auto",
    ) -> None:
        if resolution is None and cell_size is None:
            resolution = 500
        if resolution is not None and cell_size is not None:
            raise ValueError("specify at most one of resolution and cell_size")
        if resolution is not None and resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {local_kernel!r}")
        self.resolution = resolution
        self.cell_size = cell_size
        self.local_kernel = local_kernel
        self.universe = universe
        self.backend = validate_backend(backend)
        self.name = "PBSM-" + resolution_label(
            resolution, cell_size, self.PAPER_SPACE
        )

    def describe(self) -> dict:
        return {
            "resolution": self.resolution,
            "cell_size": self.cell_size,
            "local_kernel": self.local_kernel,
            "backend": self.backend,
        }

    def estimate_bytes(self, n_a: int, n_b: int, dim: int) -> int:
        # Both tables plus two per-dataset grids; replication is only
        # known after hashing (PBSM-500 reaches ~80x on paper workloads),
        # so price the assumed pre-build factor.
        refs = memmodel.GRID_REPLICATION_ESTIMATE * (n_a + n_b)
        return super().estimate_bytes(n_a, n_b, dim) + 2 * memmodel.grid_cells_bytes(
            refs, refs
        )

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        universe = self.universe
        if universe is None:
            universe = total_mbr(o.mbr for o in objects_a).union(
                total_mbr(o.mbr for o in objects_b)
            )
        backend = resolve_backend(self.backend, allow_compiled=False)
        stats.extra["backend"] = backend
        if backend == "columnar":
            return self._execute_columnar(objects_a, objects_b, universe, stats)
        return self._execute_object(objects_a, objects_b, universe, stats)

    # -- grid construction (shared by one-shot and lifecycle paths) -----
    def _make_grid(self, universe: MBR) -> UniformGrid:
        if self.resolution is not None:
            return UniformGrid(universe, resolution=self.resolution)
        return UniformGrid(universe, cell_size=self.cell_size)

    def _make_columnar_grid(self, universe: MBR) -> ColumnarGrid:
        if self.resolution is not None:
            return ColumnarGrid(universe.lo, universe.hi, resolution=self.resolution)
        return ColumnarGrid(universe.lo, universe.hi, cell_size=self.cell_size)

    def _execute_object(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        universe: MBR,
        stats: JoinStatistics,
    ) -> list[Pair]:
        build_start = time.perf_counter()
        grid_a = self._make_grid(universe)
        grid_b = self._make_grid(universe)
        for obj in objects_a:
            grid_a.insert(obj, obj.mbr)
        for obj in objects_b:
            grid_b.insert(obj, obj.mbr)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries = (grid_a.reference_count - len(objects_a)) + (
            grid_b.reference_count - len(objects_b)
        )

        join_start = time.perf_counter()
        pairs = self._merge_object_grids(grid_a, grid_b, stats)
        stats.join_seconds = time.perf_counter() - join_start

        stats.memory_bytes = grid_a.memory_bytes() + grid_b.memory_bytes()
        return pairs

    def _merge_object_grids(
        self,
        grid_a: UniformGrid,
        grid_b: UniformGrid,
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Join corresponding cells of the two per-side hash grids."""
        kernel = LOCAL_KERNELS[self.local_kernel]
        pairs: list[Pair] = []
        duplicates = 0

        # Iterate the sparser map and probe the denser one.
        if len(grid_a) <= len(grid_b):
            outer, inner, a_side_outer = grid_a, grid_b, True
        else:
            outer, inner, a_side_outer = grid_b, grid_a, False

        for coords, outer_items in outer.non_empty_cells():
            inner_items = inner.items_in_cell(coords)
            if not inner_items:
                continue
            cell_a = outer_items if a_side_outer else inner_items
            cell_b = inner_items if a_side_outer else outer_items

            def emit(a: SpatialObject, b: SpatialObject) -> None:
                nonlocal duplicates
                stats.dedup_checks += 1
                if grid_a.owns_pair(coords, a.mbr, b.mbr):
                    pairs.append((a.oid, b.oid))
                else:
                    duplicates += 1

            kernel(cell_a, cell_b, stats, emit)

        stats.duplicates_suppressed += duplicates
        return pairs

    def _execute_columnar(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        universe: MBR,
        stats: JoinStatistics,
    ) -> list[Pair]:
        """Batched PBSM: entry arrays instead of hash maps.

        Multiple assignment becomes one vectorised (object, cell-key)
        entry enumeration per side; corresponding cells are joined by
        sorting B's entries by key and binary-searching A's against
        them; the candidate pairs of every shared cell are intersection-
        tested and reference-point-deduplicated in bulk.
        """
        require_numpy()
        build_start = time.perf_counter()
        table_a = CoordinateTable.from_objects(objects_a)
        table_b = CoordinateTable.from_objects(objects_b)
        grid = self._make_columnar_grid(universe)
        a_obj, a_keys = grid.entries(table_a)
        b_obj, b_keys = grid.entries(table_b)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries = (len(a_obj) - len(objects_a)) + (
            len(b_obj) - len(objects_b)
        )
        # The batch cell merge has nested-loop comparison semantics
        # (every co-located pair is tested), whatever local_kernel the
        # object path would have used per cell pair.
        stats.extra["cell_join"] = "batch"

        join_start = time.perf_counter()
        idx_a, idx_b = grid_join_pairs(
            grid, table_a, table_b, (a_obj, a_keys), (b_obj, b_keys), stats
        )
        pairs: list[Pair] = list(
            zip(table_a.ids[idx_a].tolist(), table_b.ids[idx_b].tolist())
        )
        stats.join_seconds = time.perf_counter() - join_start

        # Same analytic model as the object path (populated cells plus
        # stored references, both per-side hash grids), plus the real
        # footprint of the coordinate tables this backend allocates.
        table_bytes = table_a.nbytes + table_b.nbytes
        stats.extra["columnar_table_bytes"] = table_bytes
        stats.memory_bytes = (
            memmodel.grid_cells_bytes(
                len(np.unique(a_keys)) if len(a_keys) else 0, len(a_obj)
            )
            + memmodel.grid_cells_bytes(
                len(np.unique(b_keys)) if len(b_keys) else 0, len(b_obj)
            )
            + table_bytes
        )
        return pairs

    # -- build/probe lifecycle -----------------------------------------
    def _build(self, objects_a, stats):
        """Partition A once; probes bring only their own entries.

        Without an explicit ``universe`` the grid is fixed to A's extent
        at build time (a one-shot join would union both sides).  Probe
        objects outside of it clamp into the edge cells — the same
        ownership semantics both backends already apply to out-of-universe
        objects — so the pair set still matches a one-shot join exactly.
        """
        if not objects_a:
            return None
        universe = self.universe
        if universe is None:
            universe = total_mbr(o.mbr for o in objects_a)
        backend = resolve_backend(self.backend, allow_compiled=False)
        if backend == "columnar":
            from repro.grid.columnar import sort_entries

            table_a = CoordinateTable.from_objects(objects_a)
            grid = self._make_columnar_grid(universe)
            a_obj, a_keys = grid.entries(table_a)
            order_a, sorted_keys_a = sort_entries(a_keys)
            stats.replicated_entries += len(a_obj) - len(objects_a)
            return {
                "backend": "columnar",
                "table_a": table_a,
                "grid": grid,
                "prepared_a": (a_obj, a_keys, order_a, sorted_keys_a),
                "n_a": len(objects_a),
                "a_cells_bytes": memmodel.grid_cells_bytes(
                    len(np.unique(a_keys)) if len(a_keys) else 0, len(a_obj)
                ),
            }
        grid_a = self._make_grid(universe)
        for obj in objects_a:
            grid_a.insert(obj, obj.mbr)
        stats.replicated_entries += grid_a.reference_count - len(objects_a)
        return {
            "backend": "object",
            "universe": universe,
            "grid_a": grid_a,
            "n_a": len(objects_a),
        }

    def _probe(self, payload, objects_b, stats):
        if payload is None or not objects_b:
            return []
        if payload["backend"] == "columnar":
            return self._probe_table(
                payload, CoordinateTable.from_objects(objects_b), stats
            )
        stats.extra["backend"] = "object"
        grid_a = payload["grid_a"]
        build_start = time.perf_counter()
        grid_b = self._make_grid(payload["universe"])
        for obj in objects_b:
            grid_b.insert(obj, obj.mbr)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries += grid_b.reference_count - len(objects_b)

        join_start = time.perf_counter()
        pairs = self._merge_object_grids(grid_a, grid_b, stats)
        stats.join_seconds = time.perf_counter() - join_start
        stats.memory_bytes = grid_a.memory_bytes() + grid_b.memory_bytes()
        return pairs

    def _probe_table(self, payload, table_b, stats):
        if payload is None or len(table_b) == 0:
            return []
        if payload["backend"] != "columnar":
            return self._probe(payload, table_b.to_objects(), stats)
        from repro.grid.columnar import grid_probe_pairs

        stats.extra["backend"] = "columnar"
        stats.extra["cell_join"] = "batch"
        grid = payload["grid"]
        table_a = payload["table_a"]

        build_start = time.perf_counter()
        b_obj, b_keys = grid.entries(table_b)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries += len(b_obj) - len(table_b)

        join_start = time.perf_counter()
        idx_a, idx_b = grid_probe_pairs(
            grid, table_a, table_b, payload["prepared_a"], (b_obj, b_keys), stats
        )
        pairs: list[Pair] = list(
            zip(table_a.ids[idx_a].tolist(), table_b.ids[idx_b].tolist())
        )
        stats.join_seconds = time.perf_counter() - join_start
        # Mirror the one-shot accounting (per-side cell model + resident
        # tables) so cached-vs-rebuild memory columns stay comparable.
        table_bytes = table_a.nbytes + table_b.nbytes
        stats.extra["columnar_table_bytes"] = table_bytes
        stats.memory_bytes = (
            payload["a_cells_bytes"]
            + memmodel.grid_cells_bytes(
                len(np.unique(b_keys)) if len(b_keys) else 0, len(b_obj)
            )
            + table_bytes
        )
        return pairs
