"""Local join kernels shared by the partition-based algorithms.

Every partition-based join eventually faces the same sub-problem: given a
small set of objects from A and one from B that share a region, find the
intersecting pairs.  The paper configures its baselines "with the
plane-sweep as the local join" (§6.2), while TOUCH uses a uniform grid
(Algorithm 4).  These kernels are factored out so that every algorithm
counts comparisons identically and the local-join ablation can swap them.

All kernels call ``emit(obj_a, obj_b)`` once per intersecting pair found
and increment ``stats.comparisons`` once per object-object MBR test.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.geometry.columnar import (
    CoordinateTable,
    intersect_pairs,
    require_numpy,
    sweep_pairs,
)
from repro.geometry.compiled import (
    intersect_pairs_compiled,
    sweep_pairs_compiled,
)
from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.grid.columnar import ColumnarGrid, grid_join_pairs
from repro.grid.uniform import UniformGrid
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

try:  # pragma: no cover - optional dependency of the columnar kernels
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = [
    "nested_loop_kernel",
    "plane_sweep_kernel",
    "grid_kernel",
    "LOCAL_KERNELS",
    "COLUMNAR_KERNELS",
    "COMPILED_KERNELS",
    "average_side_length",
    "nested_kernel_columnar",
    "sweep_kernel_columnar",
    "grid_kernel_columnar",
    "nested_kernel_compiled",
    "sweep_kernel_compiled",
]

Emit = Callable[[SpatialObject, SpatialObject], None]


def nested_loop_kernel(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    stats: JoinStatistics,
    emit: Emit,
) -> None:
    """Compare every pair; O(|A| · |B|) comparisons."""
    comparisons = 0
    for a in objects_a:
        a_mbr = a.mbr
        for b in objects_b:
            comparisons += 1
            if a_mbr.intersects(b.mbr):
                emit(a, b)
    stats.comparisons += comparisons


def plane_sweep_kernel(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    stats: JoinStatistics,
    emit: Emit,
    presorted: bool = False,
) -> None:
    """Forward-scan plane sweep along dimension 0 (Preparata & Shamos).

    Both inputs are sorted by the low edge of their MBR in dimension 0 and
    scanned synchronously; each object is tested against the objects of
    the other set whose interval on the sweep axis overlaps.  Objects far
    apart in the remaining dimensions still meet on the sweep plane — the
    redundant comparisons the paper blames for the sweep's runtime.

    With ``presorted=True`` the inputs are assumed already sorted (used by
    callers that sort once and join many partitions).
    """
    if not objects_a or not objects_b:
        return
    if presorted:
        sorted_a, sorted_b = list(objects_a), list(objects_b)
    else:
        sorted_a = sorted(objects_a, key=lambda o: o.mbr.lo[0])
        sorted_b = sorted(objects_b, key=lambda o: o.mbr.lo[0])

    n_a, n_b = len(sorted_a), len(sorted_b)
    comparisons = 0
    i = j = 0
    while i < n_a and j < n_b:
        a = sorted_a[i]
        b = sorted_b[j]
        if a.mbr.lo[0] <= b.mbr.lo[0]:
            a_mbr = a.mbr
            sweep_end = a_mbr.hi[0]
            k = j
            while k < n_b:
                other = sorted_b[k]
                if other.mbr.lo[0] > sweep_end:
                    break
                comparisons += 1
                if a_mbr.intersects(other.mbr):
                    emit(a, other)
                k += 1
            i += 1
        else:
            b_mbr = b.mbr
            sweep_end = b_mbr.hi[0]
            k = i
            while k < n_a:
                other = sorted_a[k]
                if other.mbr.lo[0] > sweep_end:
                    break
                comparisons += 1
                if other.mbr.intersects(b_mbr):
                    emit(other, b)
                k += 1
            j += 1
    stats.comparisons += comparisons


def average_side_length(objects: Sequence[SpatialObject]) -> float:
    """Mean MBR side length over all objects and dimensions."""
    if not objects:
        return 0.0
    acc = 0.0
    dims = objects[0].mbr.dim
    for obj in objects:
        acc += obj.mbr.margin()
    return acc / (len(objects) * dims)


def grid_kernel(
    objects_a: Sequence[SpatialObject],
    objects_b: Sequence[SpatialObject],
    stats: JoinStatistics,
    emit: Emit,
    cell_size_factor: float = 4.0,
    max_cells_per_dim: int = 64,
    universe: MBR | None = None,
) -> None:
    """TOUCH's local join (Algorithm 4): hash objects of B into a uniform
    grid, probe with objects of A, deduplicate with the reference-point
    rule.

    The cell size is ``cell_size_factor`` times the average object side —
    "considerably larger than the average size of the objects" (§5.2.2) —
    and the resolution is capped at ``max_cells_per_dim`` per dimension to
    bound replication for pathological extents.
    """
    if not objects_a or not objects_b:
        return
    if universe is None:
        universe = total_mbr(o.mbr for o in objects_a).union(
            total_mbr(o.mbr for o in objects_b)
        )
    avg_side = average_side_length(objects_b) or average_side_length(objects_a)
    if avg_side <= 0.0:
        # Degenerate (point) data: a single cell degrades to a nested loop.
        nested_loop_kernel(objects_a, objects_b, stats, emit)
        return
    cell_size = avg_side * cell_size_factor
    min_size = max(universe.side_lengths()) / max_cells_per_dim
    grid = UniformGrid(universe, cell_size=max(cell_size, min_size, 1e-12))

    for b in objects_b:
        grid.insert(b, b.mbr)
    stats.replicated_entries += grid.reference_count - len(objects_b)

    comparisons = 0
    duplicates = 0
    dedup_checks = 0
    for a in objects_a:
        a_mbr = a.mbr
        for coords in grid.cells_overlapping(a_mbr):
            for b in grid.items_in_cell(coords):
                comparisons += 1
                if a_mbr.intersects(b.mbr):
                    dedup_checks += 1
                    if grid.owns_pair(coords, a_mbr, b.mbr):
                        emit(a, b)
                    else:
                        duplicates += 1
    stats.comparisons += comparisons
    stats.duplicates_suppressed += duplicates
    stats.dedup_checks += dedup_checks
    grid_bytes = grid.memory_bytes()
    extra = stats.extra
    extra["local_grid_bytes"] = extra.get("local_grid_bytes", 0) + grid_bytes
    if grid_bytes > extra.get("local_grid_peak_bytes", 0):
        extra["local_grid_peak_bytes"] = grid_bytes


#: Kernel registry used by the local-join ablation.
LOCAL_KERNELS = {
    "nested": nested_loop_kernel,
    "sweep": plane_sweep_kernel,
    "grid": grid_kernel,
}


# --------------------------------------------------------------------------
# Columnar kernels
#
# Each mirrors its object-model sibling above and performs the *same*
# candidate tests in the same grid/sweep geometry, so ``stats.comparisons``
# is identical across backends — only the execution strategy (batched
# numpy instead of per-object Python) differs.  They consume
# :class:`CoordinateTable` inputs and return ``(index_a, index_b)`` pairs.
# --------------------------------------------------------------------------
def nested_kernel_columnar(
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    stats: JoinStatistics,
):
    """Batch nested loop: every pair tested via one broadcast per block."""
    require_numpy()
    idx_a, idx_b = intersect_pairs(table_a, table_b)
    stats.comparisons += len(table_a) * len(table_b)
    return idx_a, idx_b


def sweep_kernel_columnar(
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    stats: JoinStatistics,
):
    """Vectorised forward plane-sweep along dimension 0."""
    require_numpy()
    idx_a, idx_b, candidates = sweep_pairs(table_a, table_b)
    stats.comparisons += candidates
    return idx_a, idx_b


def grid_kernel_columnar(
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    stats: JoinStatistics,
    cell_size_factor: float = 4.0,
    max_cells_per_dim: int = 64,
):
    """Vectorised Algorithm 4: grid-hash B, probe with A in bulk.

    Builds the same grid geometry as :func:`grid_kernel` (cells sized a
    multiple of the average object side, capped per dimension, over the
    union of both extents), enumerates (object, cell) entries for both
    sides without a Python loop, joins them by cell key and applies the
    reference-point rule to the intersecting candidates in one shot.
    """
    require_numpy()
    n_a, n_b = len(table_a), len(table_b)
    empty = np.empty(0, dtype=np.int64)
    if n_a == 0 or n_b == 0:
        return empty, empty
    uni_lo = np.minimum(table_a.lo.min(axis=0), table_b.lo.min(axis=0))
    uni_hi = np.maximum(table_a.hi.max(axis=0), table_b.hi.max(axis=0))

    dim = table_a.dim
    avg_side = float((table_b.hi - table_b.lo).sum() / (n_b * dim))
    if avg_side <= 0.0:
        avg_side = float((table_a.hi - table_a.lo).sum() / (n_a * dim))
    if avg_side <= 0.0:
        # Degenerate (point) data: a single cell degrades to a nested loop.
        return nested_kernel_columnar(table_a, table_b, stats)
    cell_size = avg_side * cell_size_factor
    min_size = float((uni_hi - uni_lo).max()) / max_cells_per_dim
    grid = ColumnarGrid(uni_lo, uni_hi, cell_size=max(cell_size, min_size, 1e-12))

    b_obj, b_keys = grid.entries(table_b)
    stats.replicated_entries += len(b_obj) - n_b
    a_entries = grid.entries(table_a)
    idx_a, idx_b = grid_join_pairs(
        grid, table_a, table_b, a_entries, (b_obj, b_keys), stats
    )

    # Same analytic accounting as the object grid kernel: populated
    # cells of the B-side hash plus its stored references.
    grid_bytes = memmodel.grid_cells_bytes(
        len(np.unique(b_keys)) if len(b_keys) else 0, len(b_obj)
    )
    extra = stats.extra
    extra["local_grid_bytes"] = extra.get("local_grid_bytes", 0) + grid_bytes
    if grid_bytes > extra.get("local_grid_peak_bytes", 0):
        extra["local_grid_peak_bytes"] = grid_bytes
    return idx_a, idx_b


#: Columnar kernel registry, keyed like :data:`LOCAL_KERNELS`.
COLUMNAR_KERNELS = {
    "nested": nested_kernel_columnar,
    "sweep": sweep_kernel_columnar,
    "grid": grid_kernel_columnar,
}


# --------------------------------------------------------------------------
# Compiled kernels
#
# Same candidate geometry and counter semantics as the columnar registry
# above; the nested and sweep entries dispatch to the jitted (or, without
# numba, numpy-twin) loops of :mod:`repro.geometry.compiled`.  The grid
# kernel is already dominated by hash-join numpy primitives, so the
# compiled tier reuses the columnar implementation — and TOUCH replaces
# it wholesale with the flattened range descent (see
# :func:`repro.core.local_join.probe_assigned_nodes_compiled`).
# --------------------------------------------------------------------------
def nested_kernel_compiled(
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    stats: JoinStatistics,
):
    """Batch nested loop lowered to a scalar jitted double loop."""
    require_numpy()
    idx_a, idx_b = intersect_pairs_compiled(table_a, table_b)
    stats.comparisons += len(table_a) * len(table_b)
    return idx_a, idx_b


def sweep_kernel_compiled(
    table_a: CoordinateTable,
    table_b: CoordinateTable,
    stats: JoinStatistics,
):
    """Forward plane sweep lowered to jitted per-anchor window scans."""
    require_numpy()
    idx_a, idx_b, candidates = sweep_pairs_compiled(table_a, table_b)
    stats.comparisons += candidates
    return idx_a, idx_b


#: Compiled kernel registry, keyed like :data:`LOCAL_KERNELS`.
COMPILED_KERNELS = {
    "nested": nested_kernel_compiled,
    "sweep": sweep_kernel_compiled,
    "grid": grid_kernel_columnar,
}
