"""Seeded tree join (Lo & Ravishankar) — related-work extension.

The paper discusses the seeded tree in §2.2.2 but does not evaluate it; we
provide it as an optional baseline.  An R-Tree ``IA`` on dataset A is
built first; its top ``seed_levels`` levels are copied to *seed* a second
tree for dataset B.  Every b ∈ B is routed down the seed (following the
least-enlargement child, the classic R-Tree ``ChooseSubtree`` rule) into a
seed slot; each slot's buffer is then bulk-loaded into a grown subtree.
Because the seed mirrors IA's structure, the two trees' node MBRs are
aligned, which reduces the node tests of the final synchronous traversal.
"""

from __future__ import annotations

import time

from repro.geometry.mbr import total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import LOCAL_KERNELS
from repro.joins.rtree_join import RTreeSyncJoin
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import RTree
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

__all__ = ["SeededTreeJoin"]


class SeededTreeJoin(SpatialJoinAlgorithm):
    """Seeded-tree construction for B, then synchronous traversal.

    Parameters
    ----------
    fanout / leaf_capacity:
        Parameters of the R-Tree on A and of the grown subtrees.
    seed_levels:
        How many levels of IA (from the root) form the seed.
    local_kernel:
        Leaf-pair kernel of the final traversal.
    """

    name = "SeededTree"

    def __init__(
        self,
        fanout: int = 4,
        leaf_capacity: int | None = None,
        seed_levels: int = 3,
        local_kernel: str = "sweep",
    ) -> None:
        if seed_levels < 1:
            raise ValueError(f"seed_levels must be >= 1, got {seed_levels}")
        if local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {local_kernel!r}")
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self.seed_levels = seed_levels
        self.local_kernel = local_kernel

    def describe(self) -> dict:
        return {
            "fanout": self.fanout,
            "leaf_capacity": self.leaf_capacity or self.fanout,
            "seed_levels": self.seed_levels,
            "local_kernel": self.local_kernel,
        }

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []

        build_start = time.perf_counter()
        tree_a = RTree(objects_a, fanout=self.fanout, leaf_capacity=self.leaf_capacity)
        stats.build_seconds = time.perf_counter() - build_start

        assign_start = time.perf_counter()
        root_b, grown_nodes = self._grow_seeded_tree(tree_a, objects_b, stats)
        stats.assign_seconds = time.perf_counter() - assign_start

        pairs: list[Pair] = []
        kernel = LOCAL_KERNELS[self.local_kernel]
        emit = lambda a, b: pairs.append((a.oid, b.oid))  # noqa: E731

        join_start = time.perf_counter()
        stats.node_tests += 1
        if root_b is not None and tree_a.root.mbr.intersects(root_b.mbr):
            RTreeSyncJoin._traverse(tree_a.root, root_b, stats, kernel, emit)
        stats.join_seconds = time.perf_counter() - join_start

        dim = objects_a[0].mbr.dim
        stats.memory_bytes = tree_a.memory_bytes() + grown_nodes * memmodel.node_bytes(
            dim, self.fanout
        ) + memmodel.reference_list_bytes(len(objects_b))
        return pairs

    def _grow_seeded_tree(
        self,
        tree_a: RTree,
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> tuple[RTreeNode | None, int]:
        """Copy IA's top levels, route B into slots, bulk-load the slots.

        Returns the root of the grown tree and the number of nodes
        created (for the memory model).
        """
        seed_floor = max(0, tree_a.root.level - (self.seed_levels - 1))
        slots: dict[int, list[SpatialObject]] = {}
        slot_nodes: list[RTreeNode] = []

        # Identify the seed slot nodes: IA nodes at the seed floor level.
        for node in tree_a.root.iter_subtree():
            if node.level == seed_floor:
                slots[id(node)] = []
                slot_nodes.append(node)

        # Route every b down the seed by least enlargement.
        node_tests = 0
        for b in objects_b:
            current = tree_a.root
            while current.level > seed_floor:
                best, best_growth = None, float("inf")
                for child in current.children:
                    node_tests += 1
                    growth = child.mbr.union(b.mbr).volume() - child.mbr.volume()
                    if growth < best_growth:
                        best, best_growth = child, growth
                current = best
            slots[id(current)].append(b)
        stats.node_tests += node_tests

        # Bulk-load each non-empty slot into a grown subtree.
        subtrees: list[RTreeNode] = []
        grown_nodes = 0
        for node in slot_nodes:
            buffered = slots[id(node)]
            if not buffered:
                continue
            grown = RTree(buffered, fanout=self.fanout, leaf_capacity=self.leaf_capacity)
            subtrees.append(grown.root)
            grown_nodes += grown.node_count()

        if not subtrees:
            return None, 0
        if len(subtrees) == 1:
            return subtrees[0], grown_nodes

        # Stitch the subtrees under a shallow root (heights may differ;
        # the fix-height traversal of RTreeSyncJoin handles that).
        level = max(s.level for s in subtrees) + 1
        root = RTreeNode(
            total_mbr(s.mbr for s in subtrees), level=level, children=subtrees
        )
        return root, grown_nodes + 1
