"""Quadtree/Octree dual-traversal join (related work, paper §2.2.1).

"Double index traversals are also possible with Quadtrees (or Octrees in
3D).  Similar to the R+-Tree objects are duplicated ... and duplicate
results are possible and need to be filtered at the end" (Aref & Samet).

This baseline is the space-oriented counterpart of the synchronous R-Tree
traversal: each dataset is indexed by a region quadtree (2^D children per
node, recursive halving of the universe), objects are *replicated* into
every leaf region they overlap (multiple assignment), matching leaves of
the two trees are joined, and duplicates are suppressed with the
reference-point rule — the memory/dedup trade-off TOUCH is designed to
avoid.
"""

from __future__ import annotations

import itertools
import time

from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import LOCAL_KERNELS
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

__all__ = ["QuadtreeJoin"]


class _QuadNode:
    """A region node: either a leaf with objects or 2^D child regions."""

    __slots__ = ("region", "children", "objects")

    def __init__(self, region: MBR) -> None:
        self.region = region
        self.children: list[_QuadNode] | None = None
        self.objects: list[SpatialObject] = []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class _Quadtree:
    """A bulk-loaded region quadtree with multiple assignment."""

    def __init__(
        self,
        objects: list[SpatialObject],
        universe: MBR,
        leaf_capacity: int,
        max_depth: int,
    ) -> None:
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.root = _QuadNode(universe)
        self.node_count = 1
        self.reference_count = 0
        for obj in objects:
            self.root.objects.append(obj)
            self.reference_count += 1
        self._split_recursively(self.root, depth=0)

    def _split_recursively(self, node: _QuadNode, depth: int) -> None:
        if len(node.objects) <= self.leaf_capacity or depth >= self.max_depth:
            return
        center = node.region.center()
        lo, hi = node.region.lo, node.region.hi
        dim = node.region.dim
        children = []
        for corner in itertools.product((0, 1), repeat=dim):
            child_lo = tuple(lo[d] if corner[d] == 0 else center[d] for d in range(dim))
            child_hi = tuple(center[d] if corner[d] == 0 else hi[d] for d in range(dim))
            children.append(_QuadNode(MBR(child_lo, child_hi)))
        self.node_count += len(children)

        pending = node.objects
        assignments: list[list[SpatialObject]] = [[] for _ in children]
        for obj in pending:
            for i, child in enumerate(children):
                if child.region.intersects(obj.mbr):
                    assignments[i].append(obj)

        # A split that replicates everything into every child (objects
        # larger than the region) can never terminate by capacity; keep
        # the node a leaf instead of recursing exponentially.
        if min(len(bucket) for bucket in assignments) >= len(pending):
            self.node_count -= len(children)
            return

        node.objects = []
        node.children = children
        self.reference_count -= len(pending)
        for child, bucket in zip(children, assignments):
            child.objects = bucket
            self.reference_count += len(bucket)
        for child in children:
            self._split_recursively(child, depth + 1)

    def memory_bytes(self, dim: int) -> int:
        return self.node_count * memmodel.node_bytes(
            dim, 2**dim
        ) + memmodel.reference_list_bytes(self.reference_count)


class QuadtreeJoin(SpatialJoinAlgorithm):
    """Dual region-quadtree traversal with end deduplication.

    Parameters
    ----------
    leaf_capacity:
        Split a region once it holds more objects than this.
    max_depth:
        Hard recursion bound (protects against many coincident objects).
    local_kernel:
        Kernel for matching leaf regions.
    """

    name = "Quadtree"

    def __init__(
        self,
        leaf_capacity: int = 16,
        max_depth: int = 12,
        local_kernel: str = "sweep",
    ) -> None:
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        if local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {local_kernel!r}")
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.local_kernel = local_kernel

    def describe(self) -> dict:
        return {
            "leaf_capacity": self.leaf_capacity,
            "max_depth": self.max_depth,
            "local_kernel": self.local_kernel,
        }

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        universe = total_mbr(o.mbr for o in objects_a).union(
            total_mbr(o.mbr for o in objects_b)
        )

        build_start = time.perf_counter()
        tree_a = _Quadtree(objects_a, universe, self.leaf_capacity, self.max_depth)
        tree_b = _Quadtree(objects_b, universe, self.leaf_capacity, self.max_depth)
        stats.build_seconds = time.perf_counter() - build_start
        stats.replicated_entries = (tree_a.reference_count - len(objects_a)) + (
            tree_b.reference_count - len(objects_b)
        )

        # Because both trees halve the same universe, two leaf regions
        # either coincide or one contains the other; the lockstep descent
        # pairs every A leaf with every B leaf sharing its region.
        kernel = LOCAL_KERNELS[self.local_kernel]
        seen: set[Pair] = set()
        pairs: list[Pair] = []
        duplicates = 0

        def emit(a: SpatialObject, b: SpatialObject) -> None:
            nonlocal duplicates
            stats.dedup_checks += 1
            key = (a.oid, b.oid)
            if key in seen:
                duplicates += 1
            else:
                seen.add(key)
                pairs.append(key)

        join_start = time.perf_counter()
        stack = [(tree_a.root, tree_b.root)]
        node_tests = 0
        while stack:
            node_a, node_b = stack.pop()
            if node_a.is_leaf and node_b.is_leaf:
                kernel(node_a.objects, node_b.objects, stats, emit)
                continue
            if node_a.is_leaf:
                for child in node_b.children:
                    node_tests += 1
                    if node_a.region.intersects(child.region):
                        stack.append((node_a, child))
                continue
            if node_b.is_leaf:
                for child in node_a.children:
                    node_tests += 1
                    if child.region.intersects(node_b.region):
                        stack.append((child, node_b))
                continue
            # Same splitting geometry: children pair up positionally.
            for child_a, child_b in zip(node_a.children, node_b.children):
                node_tests += 1
                stack.append((child_a, child_b))
        stats.join_seconds = time.perf_counter() - join_start
        stats.node_tests += node_tests
        stats.duplicates_suppressed += duplicates

        dim = objects_a[0].mbr.dim
        # The result-set dedup needs the seen-set, unlike PBSM's
        # in-flight reference-point rule: count it (the paper's point
        # about "keeping all results ... increases the memory used").
        stats.memory_bytes = (
            tree_a.memory_bytes(dim)
            + tree_b.memory_bytes(dim)
            + len(seen) * 2 * memmodel.POINTER_BYTES
        )
        return pairs
