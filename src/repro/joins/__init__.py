"""Spatial join algorithms: baselines from the paper's evaluation."""

from repro.joins.base import JoinResult, Pair, SpatialJoinAlgorithm
from repro.joins.indexed_nested_loop import IndexedNestedLoopJoin
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.pbsm import PBSMJoin
from repro.joins.plane_sweep import PlaneSweepJoin
from repro.joins.quadtree import QuadtreeJoin
from repro.joins.registry import (
    ALGORITHMS,
    AlgorithmInfo,
    algorithm_names,
    available,
    make_algorithm,
)
from repro.joins.rtree_join import RTreeSyncJoin
from repro.joins.s3 import S3Join
from repro.joins.seeded_tree import SeededTreeJoin
from repro.joins.sssj import SSSJJoin

__all__ = [
    "JoinResult",
    "Pair",
    "SpatialJoinAlgorithm",
    "NestedLoopJoin",
    "PlaneSweepJoin",
    "PBSMJoin",
    "S3Join",
    "IndexedNestedLoopJoin",
    "RTreeSyncJoin",
    "SeededTreeJoin",
    "QuadtreeJoin",
    "SSSJJoin",
    "ALGORITHMS",
    "AlgorithmInfo",
    "available",
    "algorithm_names",
    "make_algorithm",
]
