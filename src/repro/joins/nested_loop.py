"""Nested loop join (NL) — the textbook O(|A|·|B|) baseline.

The paper keeps it in the evaluation "because it is broadly used (as part
of disk-based joins and otherwise)".  It needs no auxiliary structure, so
its memory footprint is essentially zero, and it doubles as the ground
truth for the correctness tests of every other algorithm.

Two backends share the exact pair semantics and comparison count
(|A| · |B|): the per-object Python loop and a columnar path that tests
whole blocks of pairs with one broadcasted numpy comparison — the
simplest showcase of the batch intersection primitive
(:func:`repro.geometry.columnar.intersect_pairs`).
"""

from __future__ import annotations

import time

from repro.geometry.columnar import (
    CoordinateTable,
    intersect_pairs,
    resolve_backend,
    validate_backend,
)
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import nested_loop_kernel
from repro.stats.counters import JoinStatistics

__all__ = ["NestedLoopJoin"]


class NestedLoopJoin(SpatialJoinAlgorithm):
    """Compare every object of A with every object of B.

    Parameters
    ----------
    backend:
        ``"auto"`` (columnar when numpy is importable), ``"object"`` or
        ``"columnar"``.  Pair list and comparison count are identical;
        only the execution strategy differs.
    """

    name = "NL"

    def __init__(self, backend: str = "auto") -> None:
        self.backend = validate_backend(backend)

    def describe(self) -> dict:
        return {"backend": self.backend}

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        backend = resolve_backend(self.backend)
        stats.extra["backend"] = backend
        join_start = time.perf_counter()
        if backend in ("columnar", "compiled") and objects_a and objects_b:
            table_a = CoordinateTable.from_objects(objects_a)
            table_b = CoordinateTable.from_objects(objects_b)
            if backend == "compiled":
                from repro.geometry.compiled import intersect_pairs_compiled

                idx_a, idx_b = intersect_pairs_compiled(table_a, table_b)
            else:
                idx_a, idx_b = intersect_pairs(table_a, table_b)
            stats.comparisons += len(objects_a) * len(objects_b)
            pairs = list(
                zip(table_a.ids[idx_a].tolist(), table_b.ids[idx_b].tolist())
            )
            # The object path builds nothing; the columnar path really
            # allocates the two coordinate tables — report them.
            table_bytes = table_a.nbytes + table_b.nbytes
            stats.extra["columnar_table_bytes"] = table_bytes
            stats.memory_bytes = table_bytes
        else:
            pairs = []
            nested_loop_kernel(
                objects_a,
                objects_b,
                stats,
                emit=lambda a, b: pairs.append((a.oid, b.oid)),
            )
            stats.memory_bytes = 0  # no auxiliary structures
        stats.join_seconds = time.perf_counter() - join_start
        return pairs
