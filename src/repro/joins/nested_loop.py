"""Nested loop join (NL) — the textbook O(|A|·|B|) baseline.

The paper keeps it in the evaluation "because it is broadly used (as part
of disk-based joins and otherwise)".  It needs no auxiliary structure, so
its memory footprint is essentially zero, and it doubles as the ground
truth for the correctness tests of every other algorithm.
"""

from __future__ import annotations

import time

from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import nested_loop_kernel
from repro.stats.counters import JoinStatistics

__all__ = ["NestedLoopJoin"]


class NestedLoopJoin(SpatialJoinAlgorithm):
    """Compare every object of A with every object of B."""

    name = "NL"

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        pairs: list[Pair] = []
        join_start = time.perf_counter()
        nested_loop_kernel(
            objects_a,
            objects_b,
            stats,
            emit=lambda a, b: pairs.append((a.oid, b.oid)),
        )
        stats.join_seconds = time.perf_counter() - join_start
        stats.memory_bytes = 0  # no auxiliary structures
        return pairs
