"""Indexed nested loop join (INL).

Builds an R-Tree on dataset A and issues one range query per object of B
(Elmasri & Navathe).  The paper observes that INL performs almost the same
number of object comparisons as the synchronous traversal but is slower
because every probe re-traverses the tree from the root — an effect that
shows up here in the ``node_tests`` counter and the timing split.
"""

from __future__ import annotations

import time

from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.rtree.rtree import PackingMethod, RTree
from repro.stats.counters import JoinStatistics

__all__ = ["IndexedNestedLoopJoin"]


class IndexedNestedLoopJoin(SpatialJoinAlgorithm):
    """R-Tree on A, one query per b ∈ B.

    Parameters
    ----------
    fanout:
        R-Tree fanout (paper's best configuration: 2).
    leaf_capacity:
        Objects per leaf; defaults to the fanout.
    packing:
        Bulk-loading method, ``"str"`` (paper) or ``"hilbert"``.
    """

    name = "INL"

    def __init__(
        self,
        fanout: int = 2,
        leaf_capacity: int | None = None,
        packing: PackingMethod = "str",
    ) -> None:
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self.packing = packing

    def describe(self) -> dict:
        return {
            "fanout": self.fanout,
            "leaf_capacity": self.leaf_capacity or self.fanout,
            "packing": self.packing,
        }

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []

        build_start = time.perf_counter()
        tree = RTree(
            objects_a,
            fanout=self.fanout,
            leaf_capacity=self.leaf_capacity,
            method=self.packing,
        )
        stats.build_seconds = time.perf_counter() - build_start

        pairs: list[Pair] = []
        join_start = time.perf_counter()
        for b in objects_b:
            b_oid = b.oid
            for a in tree.query(b.mbr, stats):
                pairs.append((a.oid, b_oid))
        stats.join_seconds = time.perf_counter() - join_start

        stats.memory_bytes = tree.memory_bytes()
        return pairs

    # -- build/probe lifecycle -----------------------------------------
    def _build(self, objects_a, stats):
        """Bulk-load the R-Tree over A once; probes only issue queries."""
        if not objects_a:
            return None
        return RTree(
            objects_a,
            fanout=self.fanout,
            leaf_capacity=self.leaf_capacity,
            method=self.packing,
        )

    def _probe(self, payload, objects_b, stats):
        if payload is None or not objects_b:
            return []
        tree = payload
        pairs: list[Pair] = []
        join_start = time.perf_counter()
        for b in objects_b:
            b_oid = b.oid
            for a in tree.query(b.mbr, stats):
                pairs.append((a.oid, b_oid))
        stats.join_seconds = time.perf_counter() - join_start
        stats.memory_bytes = tree.memory_bytes()
        return pairs
