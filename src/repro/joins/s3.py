"""S3 — Size Separation Spatial Join (Koudas & Sevcik).

S3 avoids replication with a *hierarchy of equi-width grids* of increasing
granularity: level ``l`` has ``fanout**l`` cells per dimension.  Every
object is assigned to exactly one cell — at the lowest level where it
overlaps a single cell.  Two hierarchies are kept, one per dataset; a cell
is joined with the corresponding cell of the other hierarchy and with the
enclosing cells on every higher level.

Because the partitioning is space-oriented, skewed datasets push many
objects into the same cells: the paper shows S3 degrading on clustered
data, which this implementation reproduces.

S3 also *filters*: an object of B overlapping only finest-level cells that
no object of A touches can never join and is dropped before assignment.
"""

from __future__ import annotations

import itertools
import math
import time

from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject
from repro.joins.base import Pair, SpatialJoinAlgorithm
from repro.joins.local import LOCAL_KERNELS
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

__all__ = ["S3Join"]

Coords = tuple[int, ...]


class _GridHierarchy:
    """One dataset's hierarchy of equi-width grids.

    Level ``l`` divides the universe into ``fanout**l`` cells per
    dimension; level 0 is a single root cell.  ``cells[l]`` maps integer
    cell coordinates to the list of objects assigned at that level.
    """

    def __init__(self, universe: MBR, fanout: int, levels: int) -> None:
        self.universe = universe
        self.fanout = fanout
        self.levels = levels
        self.cells: list[dict[Coords, list[SpatialObject]]] = [{} for _ in range(levels)]
        extents = universe.side_lengths()
        finest = fanout ** (levels - 1)
        self._finest_cell_size = tuple(
            extent / finest if extent > 0 else 0.0 for extent in extents
        )

    def finest_range(self, mbr: MBR) -> tuple[tuple[int, int], ...]:
        """Clamped index range of ``mbr`` on the finest level."""
        finest = self.fanout ** (self.levels - 1)
        ranges = []
        for d, (lo_c, hi_c) in enumerate(zip(mbr.lo, mbr.hi)):
            size = self._finest_cell_size[d]
            if size == 0.0:
                ranges.append((0, 0))
                continue
            lo_idx = int((lo_c - self.universe.lo[d]) / size)
            hi_idx = int((hi_c - self.universe.lo[d]) / size)
            lo_idx = max(0, min(finest - 1, lo_idx))
            hi_idx = max(0, min(finest - 1, hi_idx))
            ranges.append((lo_idx, hi_idx))
        return tuple(ranges)

    def assignment_of(self, mbr: MBR) -> tuple[int, Coords]:
        """Level and cell of the single-assignment rule.

        Start at the finest level; while the object spans more than one
        cell in some dimension, coarsen by dividing indices by the fanout.
        Level 0 (one cell) always terminates the walk.
        """
        ranges = self.finest_range(mbr)
        level = self.levels - 1
        f = self.fanout
        while level > 0:
            if all(lo == hi for lo, hi in ranges):
                break
            ranges = tuple((lo // f, hi // f) for lo, hi in ranges)
            level -= 1
        return level, tuple(lo for lo, _ in ranges)

    def insert(self, obj: SpatialObject) -> tuple[int, Coords]:
        """Assign ``obj`` to its single cell; returns the placement."""
        level, coords = self.assignment_of(obj.mbr)
        self.cells[level].setdefault(coords, []).append(obj)
        return level, coords

    def memory_bytes(self) -> int:
        """Analytic footprint of all levels."""
        total = 0
        for level_cells in self.cells:
            references = sum(len(objs) for objs in level_cells.values())
            total += memmodel.grid_cells_bytes(len(level_cells), references)
        return total


class S3Join(SpatialJoinAlgorithm):
    """Size separation spatial join.

    Parameters
    ----------
    fanout:
        Refinement factor between consecutive levels (paper setting: 3).
    levels:
        Number of grid levels (paper setting: 5).  Mutually exclusive
        with ``finest_cell_size``.
    finest_cell_size:
        Scale-invariant alternative: choose the number of levels per join
        so the finest grid's cells are about this many space units wide.
        The paper's configuration (fanout 3, 5 levels over 1000 units)
        corresponds to ``finest_cell_size = 1000 / 81 ≈ 12.35``; on
        density-scaled universes this keeps the objects-per-cell ratio —
        and hence S3's behaviour — unchanged.
    local_kernel:
        Cell-pair join kernel; the paper uses the plane sweep.
    """

    name = "S3"

    def __init__(
        self,
        fanout: int = 3,
        levels: int | None = None,
        finest_cell_size: float | None = None,
        local_kernel: str = "sweep",
        universe: MBR | None = None,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if levels is not None and finest_cell_size is not None:
            raise ValueError("specify at most one of levels and finest_cell_size")
        if levels is None and finest_cell_size is None:
            levels = 5
        if levels is not None and levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if finest_cell_size is not None and finest_cell_size <= 0:
            raise ValueError(
                f"finest_cell_size must be positive, got {finest_cell_size}"
            )
        if local_kernel not in LOCAL_KERNELS:
            raise ValueError(f"unknown local kernel {local_kernel!r}")
        self.fanout = fanout
        self.levels = levels
        self.finest_cell_size = finest_cell_size
        self.local_kernel = local_kernel
        self.universe = universe

    def describe(self) -> dict:
        return {
            "fanout": self.fanout,
            "levels": self.levels,
            "finest_cell_size": self.finest_cell_size,
            "local_kernel": self.local_kernel,
        }

    def _levels_for(self, universe: MBR) -> int:
        """Resolve the level count (possibly from ``finest_cell_size``)."""
        if self.levels is not None:
            return self.levels
        extent = max(universe.side_lengths())
        if extent <= 0:
            return 1
        depth = math.ceil(math.log(extent / self.finest_cell_size, self.fanout))
        return 1 + max(0, depth)

    def _execute(
        self,
        objects_a: list[SpatialObject],
        objects_b: list[SpatialObject],
        stats: JoinStatistics,
    ) -> list[Pair]:
        if not objects_a or not objects_b:
            return []
        universe = self.universe
        if universe is None:
            universe = total_mbr(o.mbr for o in objects_a).union(
                total_mbr(o.mbr for o in objects_b)
            )

        levels = self._levels_for(universe)
        build_start = time.perf_counter()
        hierarchy_a = _GridHierarchy(universe, self.fanout, levels)
        occupancy: set[Coords] = set()
        for obj in objects_a:
            hierarchy_a.insert(obj)
            ranges = hierarchy_a.finest_range(obj.mbr)
            occupancy.update(
                itertools.product(*(range(lo, hi + 1) for lo, hi in ranges))
            )
        stats.build_seconds = time.perf_counter() - build_start

        assign_start = time.perf_counter()
        hierarchy_b = _GridHierarchy(universe, self.fanout, levels)
        filtered = 0
        for obj in objects_b:
            ranges = hierarchy_b.finest_range(obj.mbr)
            touches_a = any(
                coords in occupancy
                for coords in itertools.product(*(range(lo, hi + 1) for lo, hi in ranges))
            )
            if not touches_a:
                filtered += 1
                continue
            hierarchy_b.insert(obj)
        stats.filtered = filtered
        stats.assign_seconds = time.perf_counter() - assign_start

        pairs: list[Pair] = []
        kernel = LOCAL_KERNELS[self.local_kernel]
        emit = lambda a, b: pairs.append((a.oid, b.oid))  # noqa: E731

        join_start = time.perf_counter()
        f = self.fanout
        # B cells against same-or-higher-level A cells (level_a <= level_b).
        for level_b in range(levels):
            for coords_b, cell_b in hierarchy_b.cells[level_b].items():
                coords = coords_b
                for level_a in range(level_b, -1, -1):
                    cell_a = hierarchy_a.cells[level_a].get(coords)
                    if cell_a:
                        kernel(cell_a, cell_b, stats, emit)
                    coords = tuple(c // f for c in coords)
        # A cells against strictly-higher-level B cells (level_b < level_a).
        for level_a in range(levels):
            for coords_a, cell_a in hierarchy_a.cells[level_a].items():
                coords = tuple(c // f for c in coords_a)
                for level_b in range(level_a - 1, -1, -1):
                    cell_b = hierarchy_b.cells[level_b].get(coords)
                    if cell_b:
                        kernel(cell_a, cell_b, stats, emit)
                    coords = tuple(c // f for c in coords)
        stats.join_seconds = time.perf_counter() - join_start

        stats.memory_bytes = (
            hierarchy_a.memory_bytes()
            + hierarchy_b.memory_bytes()
            + len(occupancy) * memmodel.POINTER_BYTES
        )
        return pairs
