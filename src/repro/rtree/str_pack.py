"""Sort-Tile-Recursive (STR) packing (Leutenegger, Lopez & Edgington).

STR is the bulk-loading strategy the paper uses both for its R-Tree
baselines and for TOUCH's bucket construction: it "typically produces leaf
nodes with the smallest MBRs ... and thus allows for more effective
filtering" (§5.1).

Given ``n`` items and a target partition capacity ``c``, STR computes the
number of partitions ``P = ceil(n / c)``, sorts the items by the first
coordinate of their MBR centers, slices them into ``S = ceil(P^(1/D))``
vertical slabs, and recursively tiles each slab using the remaining
``D - 1`` dimensions.  The leaves of the recursion are runs of at most
``c`` spatially adjacent items.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

__all__ = ["str_partition", "slices_of"]

T = TypeVar("T")


def slices_of(items: Sequence[T], size: int) -> list[list[T]]:
    """Chop ``items`` into consecutive runs of at most ``size`` elements."""
    if size < 1:
        raise ValueError(f"slice size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def str_partition(
    items: Sequence[T],
    capacity: int,
    center_of: Callable[[T], Sequence[float]],
    dim: int,
) -> list[list[T]]:
    """Partition ``items`` into spatially coherent groups of ≤ ``capacity``.

    Parameters
    ----------
    items:
        The objects (or index nodes) to pack.
    capacity:
        Maximum group size; the paper's "partitions of size fo".
    center_of:
        Accessor returning the MBR center used for sorting.
    dim:
        Dimensionality of the centers.

    Returns
    -------
    list[list[T]]
        Groups in tile order.  Every input item appears in exactly one
        group, and every group except possibly trailing ones is full.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if not items:
        return []
    return _tile(list(items), capacity, center_of, axis=0, dims_left=dim)


def _tile(
    items: list[T],
    capacity: int,
    center_of: Callable[[T], Sequence[float]],
    axis: int,
    dims_left: int,
) -> list[list[T]]:
    """Recursive tiling step of STR along ``axis``."""
    n = len(items)
    if n <= capacity:
        return [items]
    if dims_left <= 1:
        items.sort(key=lambda item: center_of(item)[axis])
        return slices_of(items, capacity)

    partitions_needed = math.ceil(n / capacity)
    slab_count = math.ceil(partitions_needed ** (1.0 / dims_left))
    slab_size = math.ceil(n / slab_count)

    items.sort(key=lambda item: center_of(item)[axis])
    groups: list[list[T]] = []
    for start in range(0, n, slab_size):
        slab = items[start : start + slab_size]
        groups.extend(_tile(slab, capacity, center_of, axis + 1, dims_left - 1))
    return groups
