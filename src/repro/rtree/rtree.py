"""Bulk-loaded in-memory R-Tree.

This is the index substrate for three baselines of the paper:

- the **indexed nested loop** join queries one R-Tree once per probe
  object;
- the **synchronous traversal** join descends two R-Trees in lockstep;
- the **seeded tree** join bootstraps a second tree from an existing one.

The paper uses STR bulk loading ("the STR R-Tree exhibits the best
performance for non-extreme real world data"); Hilbert packing is provided
as an alternative for the packing ablation.
"""

from __future__ import annotations

from typing import Iterator, Literal, Sequence

from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.rtree.hilbert import hilbert_key_function
from repro.rtree.node import RTreeNode
from repro.rtree.str_pack import slices_of, str_partition
from repro.stats import memory as memmodel
from repro.stats.counters import JoinStatistics

__all__ = ["RTree"]

PackingMethod = Literal["str", "hilbert"]


class RTree:
    """An immutable R-Tree built by bulk loading.

    Parameters
    ----------
    objects:
        Objects to index.  May be empty (queries then return nothing).
    fanout:
        Maximum children per internal node (the paper's best R-Tree
        configuration uses a fanout of 2).
    leaf_capacity:
        Maximum objects per leaf; defaults to ``fanout``.
    method:
        ``"str"`` (default, Sort-Tile-Recursive) or ``"hilbert"``.
    """

    def __init__(
        self,
        objects: Sequence[SpatialObject],
        fanout: int = 2,
        leaf_capacity: int | None = None,
        method: PackingMethod = "str",
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        leaf_capacity = fanout if leaf_capacity is None else leaf_capacity
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")

        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self.method = method
        self.n_objects = len(objects)
        self.dim = objects[0].mbr.dim if objects else 0
        self.root = self._build(list(objects)) if objects else None

    # -- construction ---------------------------------------------------
    def _build(self, objects: list[SpatialObject]) -> RTreeNode:
        if self.method == "str":
            groups = str_partition(
                objects,
                self.leaf_capacity,
                center_of=lambda o: o.mbr.center(),
                dim=self.dim,
            )
        elif self.method == "hilbert":
            from repro.geometry.mbr import total_mbr

            key = hilbert_key_function(total_mbr(o.mbr for o in objects))
            objects = sorted(objects, key=lambda o: key(o.mbr))
            groups = slices_of(objects, self.leaf_capacity)
        else:
            raise ValueError(f"unknown packing method: {self.method!r}")

        nodes: list[RTreeNode] = [RTreeNode.leaf(group) for group in groups]
        while len(nodes) > 1:
            if self.method == "str":
                node_groups = str_partition(
                    nodes,
                    self.fanout,
                    center_of=lambda n: n.mbr.center(),
                    dim=self.dim,
                )
            else:  # preserve the Hilbert order upwards
                node_groups = slices_of(nodes, self.fanout)
            nodes = [RTreeNode.parent_of(group) for group in node_groups]
        return nodes[0]

    # -- queries ----------------------------------------------------------
    def query(self, query_mbr: MBR, stats: JoinStatistics | None = None) -> list[SpatialObject]:
        """All indexed objects whose MBR intersects ``query_mbr``.

        When ``stats`` is given, object-level tests are counted as
        ``comparisons`` and node-level tests as ``node_tests`` — exactly
        the accounting the indexed nested loop join needs.
        """
        hits: list[SpatialObject] = []
        if self.root is None:
            return hits
        stack = [self.root]
        if stats is None:
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    hits.extend(o for o in node.objects if query_mbr.intersects(o.mbr))
                else:
                    stack.extend(c for c in node.children if query_mbr.intersects(c.mbr))
            return hits
        while stack:
            node = stack.pop()
            if node.is_leaf:
                stats.comparisons += len(node.objects)
                hits.extend(o for o in node.objects if query_mbr.intersects(o.mbr))
            else:
                stats.node_tests += len(node.children)
                stack.extend(c for c in node.children if query_mbr.intersects(c.mbr))
        return hits

    # -- inspection ---------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree, 1 for a single leaf)."""
        return self.root.level + 1 if self.root is not None else 0

    def iter_nodes(self) -> Iterator[RTreeNode]:
        """All nodes, pre-order."""
        if self.root is not None:
            yield from self.root.iter_subtree()

    def node_count(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.iter_nodes())

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for node in self.iter_nodes() if node.is_leaf)

    def memory_bytes(self) -> int:
        """Analytic footprint: nodes plus leaf object references."""
        if self.root is None:
            return 0
        nodes = self.node_count()
        return nodes * memmodel.node_bytes(self.dim, self.fanout) + memmodel.reference_list_bytes(
            self.n_objects
        )
