"""Hilbert-curve bulk loading support (Kamel & Faloutsos).

The paper cites Hilbert packing as one of the competitive R-Tree bulk
loaders ("Hilbert and STR perform similarly ... on real-world data").  We
provide it as an alternative packing method for the R-Tree substrate and
for the packing-strategy ablation.

The encoder is Skilling's transform, which maps a point on a
``2^order``-resolution grid in ``D`` dimensions to its index along the
D-dimensional Hilbert curve.  It is exact, allocation-light and works for
any dimensionality.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.mbr import MBR

__all__ = ["hilbert_index", "hilbert_key_function", "DEFAULT_ORDER"]

DEFAULT_ORDER = 10  # 1024 cells per dimension, ample for sort keys


def hilbert_index(coords: Sequence[int], order: int) -> int:
    """Hilbert-curve index of integer ``coords`` on a ``2^order`` grid.

    Parameters
    ----------
    coords:
        Non-negative integer coordinates, each ``< 2**order``.
    order:
        Bits of resolution per dimension.

    Returns
    -------
    int
        Position along the Hilbert curve, in ``[0, 2**(order * D))``.
    """
    dim = len(coords)
    if dim == 0:
        raise ValueError("need at least one coordinate")
    upper = 1 << order
    x = list(coords)
    for c in x:
        if not 0 <= c < upper:
            raise ValueError(f"coordinate {c} outside [0, {upper})")

    # Skilling's inverse transform: Gray-code untangling, high bit first.
    m = 1 << (order - 1)
    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, dim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dim):
        x[i] ^= t

    # Interleave bits, most significant first, dimension 0 first.
    result = 0
    for bit in range(order - 1, -1, -1):
        for i in range(dim):
            result = (result << 1) | ((x[i] >> bit) & 1)
    return result


def hilbert_key_function(universe: MBR, order: int = DEFAULT_ORDER):
    """Build a sort-key function mapping MBR centers to Hilbert indices.

    The returned callable accepts an :class:`MBR` and returns the Hilbert
    index of its center quantised onto a ``2^order`` grid over
    ``universe``.  Degenerate universe extents quantise to zero.
    """
    cells = (1 << order) - 1
    extents = universe.side_lengths()
    lo = universe.lo

    def key(mbr: MBR) -> int:
        center = mbr.center()
        coords = []
        for d, c in enumerate(center):
            extent = extents[d]
            if extent <= 0:
                coords.append(0)
                continue
            scaled = int((c - lo[d]) / extent * cells)
            coords.append(max(0, min(cells, scaled)))
        return hilbert_index(coords, order)

    return key
