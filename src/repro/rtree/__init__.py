"""Bulk-loaded R-Tree substrate (STR and Hilbert packing)."""

from repro.rtree.hilbert import hilbert_index, hilbert_key_function
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import RTree
from repro.rtree.str_pack import slices_of, str_partition

__all__ = [
    "RTree",
    "RTreeNode",
    "str_partition",
    "slices_of",
    "hilbert_index",
    "hilbert_key_function",
]
