"""R-Tree node structure shared by the bulk-loaded R-Tree substrate."""

from __future__ import annotations

from typing import Iterator

from repro.geometry.mbr import MBR, total_mbr
from repro.geometry.objects import SpatialObject

__all__ = ["RTreeNode"]


class RTreeNode:
    """A node of a bulk-loaded R-Tree.

    Leaf nodes (``level == 0``) store objects; internal nodes store child
    nodes.  The node's MBR tightly encloses everything below it.
    """

    __slots__ = ("mbr", "level", "children", "objects")

    def __init__(
        self,
        mbr: MBR,
        level: int,
        children: "list[RTreeNode] | None" = None,
        objects: list[SpatialObject] | None = None,
    ) -> None:
        self.mbr = mbr
        self.level = level
        self.children = children if children is not None else []
        self.objects = objects if objects is not None else []

    @classmethod
    def leaf(cls, objects: list[SpatialObject]) -> "RTreeNode":
        """Build a leaf node tightly bounding ``objects`` (non-empty)."""
        return cls(total_mbr(o.mbr for o in objects), level=0, objects=objects)

    @classmethod
    def parent_of(cls, children: "list[RTreeNode]") -> "RTreeNode":
        """Build an internal node tightly bounding ``children`` (non-empty)."""
        level = children[0].level + 1
        return cls(total_mbr(c.mbr for c in children), level=level, children=children)

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores objects rather than children."""
        return self.level == 0

    def __repr__(self) -> str:
        kind = f"{len(self.objects)} objects" if self.is_leaf else f"{len(self.children)} children"
        return f"RTreeNode(level={self.level}, {kind})"

    def iter_subtree(self) -> Iterator["RTreeNode"]:
        """Yield this node and every node below it (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def iter_leaf_objects(self) -> Iterator[SpatialObject]:
        """Yield every object stored in the leaves of this subtree."""
        for node in self.iter_subtree():
            if node.is_leaf:
                yield from node.objects

    def count_objects(self) -> int:
        """Number of objects stored below (and in) this node."""
        return sum(len(node.objects) for node in self.iter_subtree())
