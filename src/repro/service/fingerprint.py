"""Deterministic dataset fingerprints for index-cache keys.

A fingerprint digests exactly what a built index depends on: the object
ids and the MBR coordinates, in dataset order.  Two datasets with the
same objects in the same order share a fingerprint regardless of how
they were constructed (generator, IO round-trip, ``Dataset`` wrapper or
plain list) and regardless of whether numpy is importable — the columnar
fast path and the pure-Python fallback pack byte-identical streams.

Exact shape payloads are digested too (position, kind code, vertex
count, vertices — via one struct format used on every path), so a
shape-carrying dataset never shares cache entries with the MBR-only
dataset of the same boxes; datasets without any shapes digest exactly
as before the filter-refine split, keeping their fingerprints stable.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Sequence

from repro.geometry.columnar import HAVE_NUMPY
from repro.geometry.objects import SpatialObject

__all__ = ["dataset_fingerprint"]


def dataset_fingerprint(
    dataset: Sequence[SpatialObject], table=None
) -> str:
    """Hex digest identifying a dataset's ids + coordinates.

    O(N) — the service computes it once per registered dataset (and per
    ad-hoc query dataset), not per probe.  ``table`` may be the
    dataset's already-materialised :class:`CoordinateTable` — callers
    that hold one (the optimizer's sketch pass) save the conversion;
    the digest bytes are identical either way.
    """
    digest = hashlib.sha256()
    objects = dataset if isinstance(dataset, (list, tuple)) else list(dataset)
    if not objects:
        return digest.hexdigest()
    if HAVE_NUMPY:
        from repro.geometry.columnar import CoordinateTable

        if table is None:
            table = CoordinateTable.from_objects(objects)
        digest.update(table.ids.tobytes())
        digest.update(table.coords.tobytes())
        _digest_shapes(digest, objects)
        return digest.hexdigest()
    dim = objects[0].mbr.dim
    id_pack = struct.Struct("<q").pack
    coord_pack = struct.Struct(f"<{2 * dim}d").pack
    for obj in objects:
        digest.update(id_pack(obj.oid))
    for obj in objects:
        mbr = obj.mbr
        digest.update(coord_pack(*mbr.lo, *mbr.hi))
    _digest_shapes(digest, objects)
    return digest.hexdigest()


def _digest_shapes(digest, objects) -> None:
    """Fold exact shape payloads into the digest (no-op without shapes).

    Struct-packed on every path so numpy availability never changes the
    digest; shaped positions are encoded explicitly so "shape on object
    0" and "shape on object 1" never collide.
    """
    from repro.geometry.shapes import KIND_CODES, Shape

    header_pack = struct.Struct("<qqq").pack
    for position, obj in enumerate(objects):
        shape = obj.geometry
        if not isinstance(shape, Shape):
            continue
        vertices = shape.vertices
        digest.update(
            header_pack(position, KIND_CODES[shape.kind], len(vertices))
        )
        row_pack = struct.Struct(f"<{len(vertices[0])}d").pack
        for vertex in vertices:
            digest.update(row_pack(*vertex))
