"""Build-once/probe-many query service over the join algorithms.

The subsystem that turns the batch reproduction into a servable engine
(see ``docs/service.md``):

- :mod:`repro.service.fingerprint` — deterministic dataset digests;
- :mod:`repro.service.cache` — thread-safe LRU of built indexes keyed
  by (fingerprint, algorithm, config, backend, ε);
- :mod:`repro.service.service` — :class:`SpatialQueryService`: named
  datasets, cached ``prepare``/``probe`` lifecycles, one ``probe()``
  entry point for every probe shape (object batches, raw MBR batches,
  a single MBR, coordinate tables; ``query``/``probe_mbrs`` remain as
  aliases), warm/cold counters;
- :mod:`repro.service.driver` — the repeated-query workload loop behind
  ``repro-touch serve`` and the ``repeated_probe`` experiment.
"""

from repro.service.cache import IndexCache, IndexKey
from repro.service.driver import probe_batches, run_serve_workload
from repro.service.fingerprint import dataset_fingerprint
from repro.service.service import (
    SpatialQueryService,
    default_service,
    reset_default_service,
)

__all__ = [
    "IndexCache",
    "IndexKey",
    "SpatialQueryService",
    "dataset_fingerprint",
    "default_service",
    "probe_batches",
    "reset_default_service",
    "run_serve_workload",
]
