"""Thread-safe LRU cache of built spatial indexes.

The cache maps an :class:`IndexKey` — (dataset fingerprint, algorithm,
config, backend, ε) — to the :class:`~repro.joins.base.BuiltIndex` the
algorithm prepared for that exact combination.  Concurrent consumers are
safe: lookups and insertions hold one lock, and a per-key build lock
makes racing cold queries for the same key build the index exactly once
while builds for *different* keys proceed in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.joins.base import BuiltIndex

__all__ = ["IndexKey", "IndexCache"]


@dataclass(frozen=True)
class IndexKey:
    """Everything a built index depends on, in hashable form.

    ``config`` is the algorithm-override mapping as a sorted item tuple
    (the same normalisation as
    :class:`~repro.joins.registry.AlgorithmSpec`); ``backend`` is kept
    out of ``config`` so a backend switch is visibly a different key
    even for algorithms that ignore the parameter.
    """

    fingerprint: str
    algorithm: str
    config: tuple
    backend: str
    epsilon: float

    @classmethod
    def create(
        cls,
        fingerprint: str,
        algorithm: str,
        config: dict,
        backend: str | None,
        epsilon: float,
    ) -> "IndexKey":
        config = {k: v for k, v in config.items() if k != "backend"}
        return cls(
            fingerprint=fingerprint,
            algorithm=algorithm,
            config=tuple(sorted(config.items())),
            backend=backend or "default",
            epsilon=float(epsilon),
        )


class IndexCache:
    """LRU over built indexes with warm/cold/eviction counters.

    ``capacity`` bounds the number of resident indexes (least recently
    *used* evicted first; both hits and insertions refresh recency).
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[IndexKey, BuiltIndex]" = OrderedDict()
        self._lock = threading.Lock()
        self._building: dict[IndexKey, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[IndexKey]:
        """Resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def get(self, key: IndexKey) -> BuiltIndex | None:
        """Warm lookup; refreshes recency and counts a hit or a miss."""
        with self._lock:
            built = self._entries.get(key)
            if built is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return built

    def put(self, key: IndexKey, built: BuiltIndex) -> None:
        """Insert (or refresh) an index, evicting the LRU tail."""
        with self._lock:
            self._insert_locked(key, built)

    def get_or_build(
        self, key: IndexKey, builder: Callable[[], BuiltIndex]
    ) -> tuple[BuiltIndex, bool]:
        """Return ``(index, warm)``, building at most once per key.

        ``builder`` runs outside the cache-wide lock, so slow builds for
        different keys never serialise each other; a per-key lock stops
        two threads from building the same index twice.
        """
        with self._lock:
            built = self._entries.get(key)
            if built is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return built, True
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                built = self._entries.get(key)
                if built is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return built, True
                self.misses += 1
            try:
                built = builder()
            finally:
                # Always drop the per-key lock entry — a failing build
                # must not leave it behind, or retries of distinct
                # failing keys would grow the dict without bound.
                with self._lock:
                    self._building.pop(key, None)
            with self._lock:
                self._insert_locked(key, built)
            return built, False

    def clear(self) -> None:
        """Drop every resident index (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Snapshot of the counters and occupancy."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def _insert_locked(self, key: IndexKey, built: BuiltIndex) -> None:
        self._entries[key] = built
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
