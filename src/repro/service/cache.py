"""Thread-safe LRU cache of built spatial indexes.

The cache maps an :class:`IndexKey` — (dataset fingerprint, algorithm,
config, backend, ε, geometry) — to the :class:`~repro.joins.base.BuiltIndex` the
algorithm prepared for that exact combination.  Concurrent consumers are
safe: lookups and insertions hold one lock, and a per-key build lock
makes racing cold queries for the same key build the index exactly once
while builds for *different* keys proceed in parallel.

Capacity is two-dimensional: ``capacity`` bounds the index *count* and
an optional ``max_bytes`` bounds the *priced footprint* (each inserted
index is priced with
:func:`~repro.memory.budget.estimate_built_bytes`); either bound
evicts from the LRU tail, so a few large indexes and many small ones
are governed by the same budget the join engines spill against.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.joins.base import BuiltIndex
from repro.memory.budget import estimate_built_bytes, validate_max_bytes

__all__ = ["IndexKey", "IndexCache"]


@dataclass(frozen=True)
class IndexKey:
    """Everything a built index depends on, in hashable form.

    ``config`` is the algorithm-override mapping as a sorted item tuple
    (the same normalisation as
    :class:`~repro.joins.registry.AlgorithmSpec`); ``backend`` is kept
    out of ``config`` so a backend switch is visibly a different key
    even for algorithms that ignore the parameter.  ``geometry``
    ("mbr" or "exact") keeps MBR-only and filter-refine entries from
    colliding; it defaults to "mbr" so pre-refinement keys are stable.
    """

    fingerprint: str
    algorithm: str
    config: tuple
    backend: str
    epsilon: float
    geometry: str = "mbr"

    @classmethod
    def create(
        cls,
        fingerprint: str,
        algorithm: str,
        config: dict,
        backend: str | None,
        epsilon: float,
        geometry: str = "mbr",
    ) -> "IndexKey":
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon < 0:
            # NaN is the insidious case: a frozen dataclass holding NaN
            # never equals itself, so the key could never be looked up
            # again — every probe would be a cold build and the cache
            # would fill with unreachable entries.
            raise ValueError(
                f"epsilon must be finite and non-negative, got {epsilon!r}"
            )
        config = {k: v for k, v in config.items() if k != "backend"}
        return cls(
            fingerprint=fingerprint,
            algorithm=algorithm,
            config=tuple(sorted(config.items())),
            backend=backend or "default",
            epsilon=epsilon,
            geometry=geometry or "mbr",
        )


class IndexCache:
    """LRU over built indexes with warm/cold/eviction counters.

    ``capacity`` bounds the number of resident indexes (least recently
    *used* evicted first; both hits and insertions refresh recency).
    ``max_bytes``, when set, additionally bounds the summed priced
    footprint of the resident indexes — eviction is then by bytes, not
    just count, though the most recently inserted index always stays
    (an index larger than the whole budget must not thrash the cache
    empty).
    """

    def __init__(self, capacity: int = 8, max_bytes: int | None = None) -> None:
        if isinstance(capacity, bool) or not isinstance(capacity, int) or capacity < 1:
            raise ValueError(f"capacity must be an integer >= 1, got {capacity!r}")
        if max_bytes is not None:
            validate_max_bytes(max_bytes)
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[IndexKey, BuiltIndex]" = OrderedDict()
        self._sizes: dict[IndexKey, int] = {}
        self._lock = threading.Lock()
        self._building: dict[IndexKey, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[IndexKey]:
        """Resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def get(self, key: IndexKey) -> BuiltIndex | None:
        """Warm lookup; refreshes recency and counts a hit or a miss."""
        with self._lock:
            built = self._entries.get(key)
            if built is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return built

    def put(self, key: IndexKey, built: BuiltIndex) -> None:
        """Insert (or refresh) an index, evicting the LRU tail."""
        with self._lock:
            self._insert_locked(key, built)

    def get_or_build(
        self, key: IndexKey, builder: Callable[[], BuiltIndex]
    ) -> tuple[BuiltIndex, bool]:
        """Return ``(index, warm)``, building at most once per key.

        ``builder`` runs outside the cache-wide lock, so slow builds for
        different keys never serialise each other; a per-key lock stops
        two threads from building the same index twice.
        """
        with self._lock:
            built = self._entries.get(key)
            if built is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return built, True
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                built = self._entries.get(key)
                if built is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return built, True
                self.misses += 1
            try:
                built = builder()
            except BaseException:
                # Drop the per-key lock entry on failure — leaving it
                # behind would grow the dict without bound as distinct
                # failing keys retry.
                with self._lock:
                    self._building.pop(key, None)
                raise
            # Insert and release the build-lock entry under ONE lock
            # acquisition.  Popping before the insert (as this used to)
            # opened a window where a third thread missed the cache,
            # found no per-key lock, and re-ran builder() for a key the
            # first thread had already built.
            with self._lock:
                self._insert_locked(key, built)
                self._building.pop(key, None)
            return built, False

    def clear(self) -> None:
        """Drop every resident index (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self.resident_bytes = 0

    def stats(self) -> dict:
        """Snapshot of the counters and occupancy."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "max_bytes": self.max_bytes,
                "size": len(self._entries),
                "resident_bytes": self.resident_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def _insert_locked(self, key: IndexKey, built: BuiltIndex) -> None:
        if key in self._sizes:
            self.resident_bytes -= self._sizes[key]
        size = estimate_built_bytes(built)
        self._entries[key] = built
        self._sizes[key] = size
        self.resident_bytes += size
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity or (
            self.max_bytes is not None
            and self.resident_bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            evicted_key, _ = self._entries.popitem(last=False)
            self.resident_bytes -= self._sizes.pop(evicted_key, 0)
            self.evictions += 1
