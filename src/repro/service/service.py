"""The build-once/probe-many spatial query service.

:class:`SpatialQueryService` turns the library's batch reproduction into
a servable engine: datasets are registered once under a name, the first
query against a (dataset, algorithm, config, backend, ε) combination
builds the algorithm's index through the
:meth:`~repro.joins.base.SpatialJoinAlgorithm.prepare` lifecycle and
caches it in a thread-safe LRU, and every further query probes the warm
index without rebuilding — the shape TOUCH's hierarchy was designed for
(build over one dataset, probe with the other, PAPER.md §3).

Queries accept a probe dataset (any object sequence) or a raw batch of
MBRs, which flows through the vectorised columnar probe kernels without
materialising objects.  Concurrent queries from multiple threads are
safe: probes never mutate a built index, and racing cold queries build
each index exactly once.
"""

from __future__ import annotations

import math
import threading
import time
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.bench.config import GEOMETRY_MODES
from repro.datasets.base import Dataset
from repro.geometry.columnar import HAVE_NUMPY, CoordinateTable
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.joins.base import BuiltIndex, JoinResult, dimensionality
from repro.joins.registry import make_algorithm
from repro.memory.budget import SpillMetrics, validate_max_bytes
from repro.service.cache import IndexCache, IndexKey
from repro.service.fingerprint import dataset_fingerprint

if TYPE_CHECKING:
    from repro.optimizer.plan import Plan

__all__ = ["SpatialQueryService", "default_service", "reset_default_service"]


class SpatialQueryService:
    """Named datasets + cached built indexes + probe APIs.

    Parameters
    ----------
    capacity:
        Maximum number of built indexes kept warm (LRU beyond it).
    backend:
        Default geometry backend forwarded to backend-aware algorithms
        (per-query ``backend=`` overrides win; ``None`` leaves each
        algorithm's own default).
    max_bytes:
        Optional byte budget.  Bounds the cache's resident index
        footprint *and* routes any probe whose priced footprint exceeds
        the budget through a
        :class:`~repro.memory.budgeted.BudgetedSpatialJoin`, which
        spills partitions to disk instead of holding everything
        resident.  Per-probe ``max_bytes=`` overrides win.
    """

    def __init__(
        self,
        capacity: int = 8,
        backend: str | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None:
            validate_max_bytes(max_bytes)
        self.cache = IndexCache(capacity=capacity, max_bytes=max_bytes)
        self.default_backend = backend
        self.max_bytes = max_bytes
        self._spill = SpillMetrics()
        self._datasets: dict[str, tuple[list[SpatialObject], str]] = {}
        self._lock = threading.Lock()
        self._queries = 0
        self._build_seconds = 0.0
        self._probe_seconds = 0.0

    # -- dataset registry ----------------------------------------------
    def register(self, name: str, dataset: Sequence[SpatialObject]) -> str:
        """Register (or replace) a named dataset; returns its fingerprint.

        The fingerprint is computed once here, so queries by name never
        pay the O(N) digest.
        """
        objects = list(dataset)
        fingerprint = dataset_fingerprint(objects)
        with self._lock:
            self._datasets[name] = (objects, fingerprint)
        return fingerprint

    def datasets(self) -> dict[str, int]:
        """Registered dataset names and their cardinalities."""
        with self._lock:
            return {name: len(objs) for name, (objs, _) in self._datasets.items()}

    def _resolve(
        self, dataset: "str | Sequence[SpatialObject]"
    ) -> tuple[list[SpatialObject], str]:
        if isinstance(dataset, str):
            with self._lock:
                try:
                    return self._datasets[dataset]
                except KeyError:
                    known = ", ".join(sorted(self._datasets)) or "(none)"
                    raise KeyError(
                        f"unknown dataset {dataset!r}; registered: {known}"
                    ) from None
        objects = list(dataset)
        return objects, dataset_fingerprint(objects)

    # -- queries -------------------------------------------------------
    def probe(
        self,
        dataset: "str | Sequence[SpatialObject]",
        probe: "MBR | Iterable[MBR] | Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "TOUCH",
        max_bytes: int | None = None,
        geometry: str | None = None,
        **config,
    ) -> JoinResult:
        """Distance-join ``probe`` against a (cached) index over ``dataset``.

        The unified probe front door.  ``dataset`` is a registered name
        or an ad-hoc object sequence; ``probe`` is any of

        - a single :class:`~repro.geometry.mbr.MBR`,
        - a batch of MBRs (any iterable; dispatch looks at the first
          element, so don't mix MBRs and objects in one batch),
        - a probe dataset: an object sequence, a :class:`Dataset`, or a
          raw :class:`~repro.geometry.columnar.CoordinateTable`.

        MBR probes flow through the vectorised columnar probe kernels
        (object fallback without numpy) and their result pairs are
        ``(build oid, query position)`` with positions numbered 0..M-1
        in batch order; object probes pair ``(build oid, probe oid)``.

        Per the paper's ε-reduction the *build* side is inflated by
        ``epsilon`` before indexing, so each distinct ε keys its own
        index.  ``config`` is forwarded to the registry factory
        (``backend=...``, ``fanout=...``, ...).

        ``max_bytes`` (per-probe override of the service default) is
        the byte budget: an object probe whose priced footprint exceeds
        it skips the index cache and runs a spilling
        :class:`~repro.memory.budgeted.BudgetedSpatialJoin` instead.

        ``geometry="exact"`` refines the MBR candidates against the
        registered objects' exact shapes (MBR-only objects refine as
        solid boxes) before returning; exact and MBR probes key
        *different* cache entries, so switching modes never poisons the
        warm index of the other.  The default (``None``/``"mbr"``)
        returns MBR candidates exactly as before.

        ``algorithm="auto"`` routes the query through the adaptive
        optimizer (:mod:`repro.optimizer`): the chosen variant keys the
        index cache exactly as if it had been requested by name, and the
        decision is recorded in ``result.stats.extra["plan"]`` — the
        same :class:`~repro.optimizer.plan.Plan` that :meth:`explain`
        returns without executing.

        The returned :class:`~repro.joins.base.JoinResult` carries
        ``parameters["cache"]`` (``"warm"`` | ``"cold"`` | ``"spilled"``)
        and ``parameters["build_seconds"]`` of the underlying index.
        """
        probe, epsilon, geometry, budget, objects, fingerprint, config = (
            self._normalize(dataset, probe, epsilon, geometry, max_bytes, config)
        )
        plan = None
        if algorithm == "auto":
            plan = self._plan(
                objects, fingerprint, probe, epsilon, algorithm, config,
                geometry, budget,
            )
            algorithm = plan.algorithm
            if "backend" not in config:
                config = {**config, "backend": plan.backend}
        key = IndexKey.create(
            fingerprint,
            algorithm,
            config,
            config.get("backend"),
            epsilon,
            geometry=geometry,
        )
        algo = make_algorithm(algorithm, **config)

        if budget is not None and not isinstance(probe, CoordinateTable):
            probe_objects = list(probe) if isinstance(probe, Dataset) else probe
            if objects and probe_objects:
                dim = dimensionality(objects, probe_objects)
                estimated = algo.estimate_bytes(
                    len(objects), len(probe_objects), dim
                )
                if estimated > budget:
                    result = self._budgeted_probe(
                        objects,
                        probe_objects,
                        epsilon,
                        algorithm,
                        budget,
                        config,
                        geometry=geometry,
                    )
                    if plan is not None:
                        result.stats.extra["plan"] = plan.as_dict()
                    return result
            probe = probe_objects

        def builder() -> BuiltIndex:
            build_side = [obj.inflated(epsilon) for obj in objects]
            return algo.prepare(build_side)

        built, warm = self.cache.get_or_build(key, builder)
        if isinstance(probe, Dataset):
            probe = list(probe)
        start = time.perf_counter()
        result = algo.probe(built, probe)
        probe_seconds = time.perf_counter() - start
        with self._lock:
            self._queries += 1
            self._probe_seconds += probe_seconds
            if not warm:
                self._build_seconds += built.build_seconds
        result.parameters = {
            **result.parameters,
            "cache": "warm" if warm else "cold",
            "build_seconds": built.build_seconds,
            "epsilon": epsilon,
        }
        if geometry == "exact":
            result = self._refine(
                result, objects, probe, epsilon, config.get("backend")
            )
        if plan is not None:
            result.stats.extra["plan"] = plan.as_dict()
        return result

    def explain(
        self,
        dataset: "str | Sequence[SpatialObject]",
        probe: "MBR | Iterable[MBR] | Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "auto",
        max_bytes: int | None = None,
        geometry: str | None = None,
        **config,
    ) -> "Plan":
        """The :class:`~repro.optimizer.plan.Plan` a :meth:`probe` call
        with the same arguments would execute, without executing it.

        ``algorithm="auto"`` lets the optimizer choose; a concrete name
        pins the algorithm but still scores every candidate, so the plan
        shows what auto would have preferred.  The returned plan equals
        the one an actual ``probe(algorithm="auto")`` records in
        ``stats.extra["plan"]`` — both run through the same resolution.
        """
        probe, epsilon, geometry, budget, objects, fingerprint, config = (
            self._normalize(dataset, probe, epsilon, geometry, max_bytes, config)
        )
        return self._plan(
            objects, fingerprint, probe, epsilon, algorithm, config,
            geometry, budget,
        )

    def _normalize(
        self, dataset, probe, epsilon, geometry, max_bytes, config
    ) -> tuple:
        """Shared argument resolution for :meth:`probe` / :meth:`explain`.

        Normalises the probe payload (single MBR / MBR batch / object
        sequence), validates ε, geometry and the byte budget, resolves
        the dataset and folds the service-default backend into
        ``config`` — one code path, so a plan explained and a plan
        executed can never disagree on the resolved inputs.
        """
        if isinstance(probe, MBR):
            probe = self._mbr_batch([probe])
        elif not isinstance(probe, (Dataset, CoordinateTable)):
            items = list(probe)
            if items and isinstance(items[0], MBR):
                probe = self._mbr_batch(items)
            else:
                probe = items
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon < 0:
            raise ValueError(
                f"epsilon must be finite and non-negative, got {epsilon!r}"
            )
        geometry = geometry or "mbr"
        if geometry not in GEOMETRY_MODES:
            raise ValueError(
                f"geometry must be one of {GEOMETRY_MODES}, got {geometry!r}"
            )
        if max_bytes is not None:
            validate_max_bytes(max_bytes)
        budget = max_bytes if max_bytes is not None else self.max_bytes
        objects, fingerprint = self._resolve(dataset)
        if "backend" not in config and self.default_backend is not None:
            config = {**config, "backend": self.default_backend}
        return probe, epsilon, geometry, budget, objects, fingerprint, config

    def _plan(
        self, objects, fingerprint, probe, epsilon, algorithm, config,
        geometry, budget,
    ) -> "Plan":
        """One optimizer call shared by :meth:`probe` and :meth:`explain`.

        The service always probes sequentially, so ``workers`` is pinned
        to 0; ``reuse_index=True`` marks the index cache as in play.
        """
        from repro.optimizer import choose_plan, sketch_dataset

        sketch_a = sketch_dataset(objects, fingerprint)
        sketch_b = sketch_dataset(
            list(probe) if isinstance(probe, Dataset) else probe
        )
        return choose_plan(
            sketch_a,
            sketch_b,
            epsilon,
            algorithm=None if algorithm == "auto" else algorithm,
            backend=config.get("backend"),
            workers=0,
            geometry=geometry,
            reuse_index=True,
            max_bytes=budget,
        )

    def _refine(
        self,
        result: JoinResult,
        objects: "list[SpatialObject]",
        probe: "list[SpatialObject] | CoordinateTable",
        epsilon: float,
        backend: str | None,
    ) -> JoinResult:
        """Refine MBR candidates against exact shapes (``geometry="exact"``).

        The build side is the *registered* objects — never the inflated
        copies the index was built from — so the exact predicate sees
        original extents.  MBR-batch probes (columnar tables) refine as
        position-numbered solid boxes, matching their pair numbering.
        """
        from repro.refine import RefinePipeline

        if isinstance(probe, CoordinateTable):
            probe = probe.to_objects()
        stats = result.stats
        start = time.perf_counter()
        refined = RefinePipeline(epsilon, backend=backend or "auto").refine(
            result.pairs, objects, probe, stats=stats
        )
        refine_seconds = time.perf_counter() - start
        stats.join_seconds += refine_seconds
        stats.total_seconds += refine_seconds
        stats.extra["refine_seconds"] = refine_seconds
        stats.result_pairs = len(refined)
        with self._lock:
            self._probe_seconds += refine_seconds
        return JoinResult(
            result.algorithm,
            refined,
            stats,
            {**result.parameters, "geometry": "exact"},
        )

    def _budgeted_probe(
        self,
        objects: "list[SpatialObject]",
        probe_objects: "list[SpatialObject]",
        epsilon: float,
        algorithm: str,
        budget: int,
        config: dict,
        geometry: str = "mbr",
    ) -> JoinResult:
        """One-shot spilling join for a probe that exceeds the budget.

        Caching the built index would defeat the budget (the index alone
        is over it), so the query runs the full ε-reduced join under the
        memory governor instead: partitions spill to disk, counters feed
        the service-wide :class:`~repro.memory.budget.SpillMetrics`.
        """
        from repro.memory.budgeted import BudgetedSpatialJoin

        joiner = BudgetedSpatialJoin(
            lambda: make_algorithm(algorithm, **config),
            max_bytes=budget,
            metrics=self._spill,
        )
        build_side = [obj.inflated(epsilon) for obj in objects]
        start = time.perf_counter()
        result = joiner.join(build_side, probe_objects)
        probe_seconds = time.perf_counter() - start
        with self._lock:
            self._queries += 1
            self._probe_seconds += probe_seconds
        result.parameters = {
            **result.parameters,
            "cache": "spilled",
            "epsilon": epsilon,
            "max_bytes": budget,
            "spill_dir": joiner.last_spill_dir,
        }
        if geometry == "exact":
            result = self._refine(
                result, objects, probe_objects, epsilon, config.get("backend")
            )
        return result

    @staticmethod
    def _mbr_batch(boxes: "list[MBR]") -> "CoordinateTable | list[SpatialObject]":
        """One probe batch from raw MBRs (columnar when numpy is around)."""
        if HAVE_NUMPY:
            return CoordinateTable.from_mbrs(boxes)
        return [SpatialObject(i, box) for i, box in enumerate(boxes)]

    # -- historical spellings (thin aliases over probe()) --------------
    def query(
        self,
        dataset: "str | Sequence[SpatialObject]",
        probe: "Sequence[SpatialObject] | CoordinateTable",
        epsilon: float,
        algorithm: str = "TOUCH",
        max_bytes: int | None = None,
        geometry: str | None = None,
        **config,
    ) -> JoinResult:
        """Alias for :meth:`probe` with a probe dataset (historical name)."""
        return self.probe(
            dataset,
            probe,
            epsilon,
            algorithm=algorithm,
            max_bytes=max_bytes,
            geometry=geometry,
            **config,
        )

    def probe_mbrs(
        self,
        dataset: "str | Sequence[SpatialObject]",
        mbrs: Iterable[MBR],
        epsilon: float,
        algorithm: str = "TOUCH",
        geometry: str | None = None,
        **config,
    ) -> JoinResult:
        """Alias for :meth:`probe` with a raw MBR batch (historical name)."""
        boxes = list(mbrs)
        if not boxes:
            raise ValueError("probe_mbrs requires at least one query MBR")
        return self.probe(
            dataset, boxes, epsilon, algorithm=algorithm, geometry=geometry, **config
        )

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        """Warm/cold counters, cache occupancy, spill activity, timings."""
        cache = self.cache.stats()
        spill = self._spill.snapshot()
        with self._lock:
            return {
                "queries": self._queries,
                "warm_hits": cache["hits"],
                "cold_builds": cache["misses"],
                "evictions": cache["evictions"],
                "cached_indexes": cache["size"],
                "capacity": cache["capacity"],
                "max_bytes": self.max_bytes,
                "resident_bytes": cache["resident_bytes"],
                "registered_datasets": len(self._datasets),
                "build_seconds": self._build_seconds,
                "probe_seconds": self._probe_seconds,
                **spill,
            }


#: Process-wide service used by ``run_algorithm(reuse_index=True)``.
_DEFAULT: SpatialQueryService | None = None
_DEFAULT_LOCK = threading.Lock()


def default_service() -> SpatialQueryService:
    """The lazily-created process-wide service instance."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = SpatialQueryService()
        return _DEFAULT


def reset_default_service() -> None:
    """Drop the process-wide service (tests; releases cached indexes)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = None
