"""Repeated-query workload driver: the serve loop behind CLI + bench.

Slices a probe dataset into query batches and plays them against a
:class:`~repro.service.service.SpatialQueryService` — one cold build,
many warm probes — optionally racing the same batches through
rebuild-per-query one-shot joins with hard pair-set parity assertions.
Shared by the ``repro-touch serve`` subcommand and the
``repeated_probe`` benchmark experiment so both report the same numbers.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.geometry.objects import SpatialObject
from repro.geometry.vertex_table import shape_of
from repro.joins.base import JoinResult
from repro.joins.registry import make_algorithm
from repro.refine import RefinePipeline
from repro.service.service import SpatialQueryService

__all__ = ["probe_batches", "run_serve_workload"]


def probe_batches(
    objects: Sequence[SpatialObject], probes: int, batch: int | None = None
) -> list[list[SpatialObject]]:
    """Cut a probe dataset into ``probes`` non-empty query batches.

    ``batch`` defaults to an even split; batches wrap around the dataset
    when ``probes * batch`` exceeds it, so every batch carries work.
    """
    objects = list(objects)
    if not objects:
        raise ValueError("cannot build probe batches from an empty dataset")
    if probes < 1:
        raise ValueError(f"probes must be >= 1, got {probes}")
    n = len(objects)
    if batch is None:
        batch = max(1, n // probes)
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    out = []
    for i in range(probes):
        start = (i * batch) % n
        chunk = objects[start : start + batch]
        if len(chunk) < batch:
            chunk = chunk + objects[: batch - len(chunk)]
        out.append(chunk)
    return out


def run_serve_workload(
    dataset_a: Sequence[SpatialObject],
    dataset_b: Sequence[SpatialObject],
    epsilon: float,
    algorithm: str = "TOUCH",
    probes: int = 100,
    batch: int | None = None,
    compare_rebuild: bool = False,
    service: SpatialQueryService | None = None,
    geometry: str | None = None,
    **config,
) -> dict:
    """Play a build-once/probe-many workload; return a flat summary.

    The service path registers ``dataset_a``, then issues one query per
    batch of ``dataset_b`` (first one cold — it builds the index — the
    rest warm).  With ``compare_rebuild=True`` the identical batches are
    also joined by fresh one-shot algorithm instances (index rebuilt per
    query, the pre-service execution shape) and every batch's pair set
    is **asserted identical** between the two paths — the sequential
    path is the ground truth, so the speedup is only reported when it
    cannot have come from dropping pairs.

    ``geometry`` is an explicit parameter (not part of ``**config``)
    because the rebuild path forwards ``config`` verbatim to
    :func:`~repro.joins.registry.make_algorithm`, which owns no such
    knob; with ``geometry="exact"`` the rebuild reference attaches
    shapes *before* ε-inflation and refines each one-shot result, so
    the parity assertion compares exact against exact.
    """
    service = service or SpatialQueryService(capacity=4)
    service.register("build", dataset_a)
    batches = probe_batches(dataset_b, probes, batch)

    served = []
    serve_start = time.perf_counter()
    for chunk in batches:
        served.append(
            service.query(
                "build",
                chunk,
                epsilon,
                algorithm=algorithm,
                geometry=geometry,
                **config,
            )
        )
    serve_seconds = time.perf_counter() - serve_start

    cold = sum(1 for r in served if r.parameters.get("cache") == "cold")
    summary = {
        "algorithm": served[0].algorithm,
        "n_build": len(dataset_a),
        "n_probe_total": sum(len(chunk) for chunk in batches),
        "probes": len(batches),
        "batch": len(batches[0]),
        "epsilon": epsilon,
        "result_pairs": sum(len(r) for r in served),
        "comparisons": sum(r.stats.comparisons for r in served),
        "serve_seconds": serve_seconds,
        "build_seconds": served[0].parameters.get("build_seconds", 0.0),
        "cold_queries": cold,
        "warm_queries": len(served) - cold,
        "service_stats": service.stats(),
    }

    if compare_rebuild:
        # The reference joins need a concrete registry name; when the
        # service resolved ``"auto"`` per batch, rebuild with its first
        # choice — parity is pair-set equality, which every correct
        # variant satisfies regardless of which one the optimizer picked.
        rebuild_algorithm = (
            served[0].algorithm if algorithm == "auto" else algorithm
        )
        exact = geometry == "exact"
        source = dataset_a
        if exact:
            # Shapes must ride the build side *before* ε-inflation: a
            # shape-less object refines as a solid box over its MBR, and
            # after inflation that box would over-approximate the true
            # extent.  ``inflated()`` carries the attached shape through
            # unchanged, so the refine stage sees original geometry.
            source = [
                SpatialObject(obj.oid, obj.mbr, shape_of(obj))
                for obj in dataset_a
            ]
        build_side = [obj.inflated(epsilon) for obj in source]
        rebuild_pairs = 0
        rebuild_comparisons = 0
        rebuild_start = time.perf_counter()
        rebuild_results = []
        for chunk in batches:
            one_shot = make_algorithm(rebuild_algorithm, **config)
            result = one_shot.join(build_side, chunk)
            if exact:
                refined = RefinePipeline(
                    epsilon, backend=config.get("backend") or "auto"
                ).refine(result.pairs, build_side, chunk, stats=result.stats)
                result = JoinResult(
                    result.algorithm, refined, result.stats, result.parameters
                )
            rebuild_results.append(result)
        rebuild_seconds = time.perf_counter() - rebuild_start
        for index, (cached, fresh) in enumerate(zip(served, rebuild_results)):
            if cached.pair_set() != fresh.pair_set():
                missing = len(fresh.pair_set() - cached.pair_set())
                spurious = len(cached.pair_set() - fresh.pair_set())
                raise AssertionError(
                    f"{summary['algorithm']} probe batch {index} diverges from "
                    f"the rebuild-per-query join: {missing} missing, "
                    f"{spurious} spurious"
                )
            rebuild_pairs += len(fresh)
            rebuild_comparisons += fresh.stats.comparisons
        summary["rebuild_seconds"] = rebuild_seconds
        summary["rebuild_pairs"] = rebuild_pairs
        summary["rebuild_comparisons"] = rebuild_comparisons
        summary["speedup"] = (
            rebuild_seconds / serve_seconds if serve_seconds > 0 else float("inf")
        )
        summary["parity"] = True
    return summary
