#!/usr/bin/env python3
"""Algorithm shootout: every join of the paper's evaluation on one workload.

Reproduces the spirit of Figure 8 interactively: all eight approaches
(nested loop, plane sweep, PBSM-500/100, S3, INL, synchronous R-Tree
traversal, TOUCH — plus the seeded-tree extension) joined on the same
Gaussian workload, reporting the paper's three metrics: comparisons,
execution time and memory footprint.  All results are cross-validated.

Run:  python examples/algorithm_shootout.py
"""

from repro import algorithm_names, gaussian_boxes, make_algorithm
from repro.bench.reporting import format_table
from repro.datasets.transform import inflate
from repro.validation import assert_all_equivalent


def main() -> None:
    epsilon = 10.0
    dataset_a = inflate(gaussian_boxes(1_000, seed=5), epsilon)
    dataset_b = gaussian_boxes(4_000, seed=6)
    print(
        f"joining {len(dataset_a):,} x {len(dataset_b):,} Gaussian boxes "
        f"(eps = {epsilon:g}, applied to dataset A)\n"
    )

    rows = []
    results = []
    for name in algorithm_names():
        result = make_algorithm(name).join(dataset_a, dataset_b)
        results.append(result)
        stats = result.stats
        rows.append(
            {
                "algorithm": result.algorithm,
                "pairs": len(result.pairs),
                "comparisons": stats.comparisons,
                "node_tests": stats.node_tests,
                "filtered": stats.filtered,
                "memory_KiB": round(stats.memory_bytes / 1024, 1),
                "seconds": round(stats.total_seconds, 4),
            }
        )

    assert_all_equivalent(results)
    print(format_table(rows, columns=list(rows[0])))
    print("\nall algorithms returned the identical result set")

    fastest = min(rows, key=lambda r: r["seconds"])
    leanest = min(rows, key=lambda r: r["memory_KiB"])
    fewest = min(rows, key=lambda r: r["comparisons"])
    print(f"fastest: {fastest['algorithm']}  |  leanest: {leanest['algorithm']}"
          f"  |  fewest comparisons: {fewest['algorithm']}")


if __name__ == "__main__":
    main()
