#!/usr/bin/env python3
"""Quickstart: join two synthetic datasets with TOUCH.

Generates the paper's uniform 3D workload (§6.2) at a small scale, runs a
distance join with ε = 10 through the public API, and verifies the result
against the nested-loop ground truth.

Run:  python examples/quickstart.py
"""

from repro import NestedLoopJoin, TouchJoin, distance_join, uniform_boxes


def main() -> None:
    # 1. Two unsorted, unindexed spatial datasets (boxes in a 1000^3 space).
    dataset_a = uniform_boxes(2_000, seed=1)
    dataset_b = uniform_boxes(10_000, seed=2)
    print(f"dataset A: {len(dataset_a)} boxes, dataset B: {len(dataset_b)} boxes")

    # 2. Distance join: all pairs within eps of each other.  TOUCH is the
    #    default algorithm; the smaller dataset is used as the build side.
    epsilon = 10.0
    result = distance_join(dataset_a, dataset_b, epsilon)
    stats = result.stats

    print(f"\nTOUCH distance join (eps = {epsilon:g})")
    print(f"  result pairs      : {len(result.pairs):,}")
    print(f"  comparisons       : {stats.comparisons:,} "
          f"(nested loop would need {len(dataset_a) * len(dataset_b):,})")
    print(f"  filtered B objects: {stats.filtered:,}")
    print(f"  memory (model)    : {stats.memory_bytes / 1024:.1f} KiB")
    print(f"  build/assign/join : {stats.build_seconds:.3f}s / "
          f"{stats.assign_seconds:.3f}s / {stats.join_seconds:.3f}s")
    print(f"  total             : {stats.total_seconds:.3f}s")

    # 3. Sanity check on a subset against the textbook nested loop.
    subset_a, subset_b = dataset_a[:200], dataset_b[:600]
    fast = distance_join(subset_a, subset_b, epsilon, order="keep")
    slow = distance_join(
        subset_a, subset_b, epsilon, algorithm=NestedLoopJoin(), order="keep"
    )
    assert fast.pair_set() == slow.pair_set(), "TOUCH must equal ground truth"
    print("\nverified: TOUCH result matches the nested-loop ground truth")

    # 4. The same API accepts any algorithm and raw intersection joins too.
    intersection = TouchJoin().join(dataset_a, dataset_b)
    print(f"plain intersection join (eps = 0): {len(intersection.pairs)} pairs")


if __name__ == "__main__":
    main()
