#!/usr/bin/env python3
"""Touch detection: the paper's motivating neuroscience use case (§3).

Builds a synthetic neural tissue model (axon and dendrite cylinders with a
dense core and sparse rim, substituting the proprietary rat-brain data),
then places synapses with the paper's rule: "a synapse is placed wherever
a neuron's dendrite is within a certain distance of another neuron's
axon".

The pipeline is the full two-phase join:
  1. filtering — TOUCH on ε-inflated MBRs (candidate pairs);
  2. refinement — exact cylinder-to-cylinder distances.

Run:  python examples/neuroscience_touch_detection.py
"""

from repro import distance_join, neuroscience_datasets
from repro.core.refine import refine_pairs


def main() -> None:
    axons, dendrites = neuroscience_datasets(n_neurons=24, seed=7)
    print("synthetic tissue model")
    print(f"  axon cylinders    : {len(axons):,}")
    print(f"  dendrite cylinders: {len(dendrites):,} "
          f"(~{len(dendrites) / len(axons):.1f}x the axons, as in the paper)")

    for epsilon in (5.0, 10.0):
        # Phase 1: TOUCH filtering on inflated bounding boxes.
        candidates = distance_join(axons, dendrites, epsilon, order="keep")
        stats = candidates.stats
        filtered_pct = 100.0 * stats.filtered / len(dendrites)

        # Phase 2: refinement on the exact cylinder geometry.
        synapses = refine_pairs(candidates.pairs, axons, dendrites, epsilon)

        print(f"\ntouch detection with eps = {epsilon:g} um")
        print(f"  candidate pairs (MBR filter): {len(candidates.pairs):,}")
        print(f"  synapses after refinement   : {len(synapses):,}")
        print(f"  dendrites filtered by TOUCH : {stats.filtered:,} ({filtered_pct:.1f}%)"
              " — the dense-core/sparse-rim effect of Fig. 16")
        print(f"  comparisons                 : {stats.comparisons:,}")
        print(f"  join time                   : {stats.total_seconds:.3f}s")

    # Show a few placed synapses with their exact distances.
    candidates = distance_join(axons, dendrites, 5.0, order="keep")
    synapses = refine_pairs(candidates.pairs, axons, dendrites, 5.0)
    print("\nfirst synapse locations (axon id, dendrite id, distance um):")
    for oid_a, oid_b in synapses[:5]:
        distance = axons[oid_a].geometry.min_distance(dendrites[oid_b].geometry)
        print(f"  axon {oid_a:5d}  dendrite {oid_b:5d}  d = {distance:.3f}")


if __name__ == "__main__":
    main()
