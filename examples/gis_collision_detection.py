#!/usr/bin/env python3
"""GIS proximity: 2D spatial join of landmarks against road segments.

The paper's introduction motivates spatial joins with geographic
applications ("detect collisions or proximity between geographical
features: landmarks, houses, roads").  This example runs TOUCH in 2D on a
synthetic city: clustered building footprints joined against a road
network, asking "which buildings lie within 25 m of a road?" — and shows
the BlueGene/P-style chunked execution (§3) on the same query.

Run:  python examples/gis_collision_detection.py
"""

import numpy as np

from repro import TouchJoin, distance_join
from repro.datasets import Dataset, clustered_boxes
from repro.geometry.mbr import MBR
from repro.geometry.objects import SpatialObject
from repro.parallel.chunked import ChunkedSpatialJoin


def make_road_network(n_segments: int, space: float, seed: int) -> Dataset:
    """Random axis-aligned road segments as thin boxes (width 4 m)."""
    rng = np.random.default_rng(seed)
    objects = []
    for oid in range(n_segments):
        x, y = rng.uniform(0, space, size=2)
        length = rng.uniform(50.0, 400.0)
        if rng.uniform() < 0.5:  # east-west road
            lo = (x, y)
            hi = (min(space, x + length), y + 4.0)
        else:  # north-south road
            lo = (x, y)
            hi = (x + 4.0, min(space, y + length))
        objects.append(SpatialObject(oid, MBR(lo, hi)))
    universe = MBR((0.0, 0.0), (space, space))
    return Dataset(objects, name="roads", universe=universe)


def main() -> None:
    space = 10_000.0  # a 10 km x 10 km city
    buildings = clustered_boxes(
        4_000, space=space, dim=2, n_clusters=30, cluster_sigma=400.0,
        side_range=(5.0, 40.0), seed=3,
    ).renamed("buildings")
    roads = make_road_network(800, space, seed=4)
    print(f"{len(buildings):,} buildings (30 districts), {len(roads):,} road segments")

    # Which buildings are within 25 m of a road?
    result = distance_join(roads, buildings, epsilon=25.0, order="keep")
    near_road = {oid_b for _, oid_b in result.pairs}
    print(f"\nbuildings within 25 m of a road: {len(near_road):,} "
          f"of {len(buildings):,} ({100 * len(near_road) / len(buildings):.1f}%)")
    print(f"  candidate pairs : {len(result.pairs):,}")
    print(f"  comparisons     : {result.stats.comparisons:,} "
          f"(brute force: {len(roads) * len(buildings):,})")
    print(f"  total time      : {result.stats.total_seconds:.3f}s")

    # The same join decomposed into four contiguous chunks (one per
    # "core"), exactly like the paper's BlueGene/P deployment.
    chunked = ChunkedSpatialJoin(TouchJoin, n_chunks=4)
    inflated = [obj.inflated(25.0) for obj in roads]
    chunk_result = chunked.join(inflated, list(buildings))
    assert chunk_result.pair_set() == result.pair_set()
    print(f"\nchunked execution (4 chunks) reproduces the result exactly:"
          f" {len(chunk_result.pairs):,} pairs,"
          f" {chunk_result.stats.duplicates_suppressed} boundary duplicates suppressed")


if __name__ == "__main__":
    main()
