#!/usr/bin/env python3
"""Parallel join: the paper's §3 per-core decomposition on a worker pool.

Joins a Figure-9-style uniform workload sequentially, through the
sequential chunked simulation, and through the real multiprocess engine
(2 workers, slabs and tiles), verifying that every engine returns the
identical pair set and showing the per-phase timing breakdown.

Run:  python examples/parallel_join.py
"""

from repro.joins.registry import AlgorithmSpec
from repro.parallel import ChunkedSpatialJoin, ParallelChunkedJoin, shutdown_pools
from repro.datasets.synthetic import uniform_boxes
from repro.datasets.transform import inflate


def main() -> None:
    # 1. A dense uniform workload (the build side inflated by eps, as in
    #    the paper's distance-join methodology).
    epsilon = 2.0
    dataset_a = uniform_boxes(1_500, space=250.0, seed=1)
    dataset_b = uniform_boxes(4_500, space=250.0, seed=2)
    build = inflate(dataset_a, epsilon)
    print(f"workload: |A|={len(dataset_a)}, |B|={len(dataset_b)}, eps={epsilon:g}")

    # 2. One TOUCH configuration, three execution engines.  The spec is
    #    picklable, so the multiprocess engine can rebuild the algorithm
    #    inside every worker ("each core builds its own index").
    spec = AlgorithmSpec.create("TOUCH")
    sequential = spec.make().join(build, dataset_b)
    print(f"\nsequential          : {sequential.stats.total_seconds:.3f}s, "
          f"{len(sequential.pairs):,} pairs")

    chunked = ChunkedSpatialJoin(spec, n_chunks=4).join(build, dataset_b)
    print(f"chunked (4 slabs)   : {chunked.stats.total_seconds:.3f}s, "
          f"{len(chunked.pairs):,} pairs, "
          f"{chunked.stats.duplicates_suppressed} boundary duplicates suppressed")

    for kind in ("slabs", "tiles"):
        engine = ParallelChunkedJoin(spec, workers=2, n_chunks=4, kind=kind)
        result = engine.join(build, dataset_b)
        extra = result.stats.extra
        print(f"parallel 2w, {kind:5s} : {result.stats.total_seconds:.3f}s, "
              f"{len(result.pairs):,} pairs  "
              f"[decompose {extra['decompose_seconds']:.3f}s | "
              f"fan-out {extra['worker_join_seconds']:.3f}s | "
              f"merge {extra['merge_seconds']:.3f}s]")
        assert result.pair_set() == sequential.pair_set(), "engines must agree"

    assert chunked.pair_set() == sequential.pair_set(), "engines must agree"
    print("\nall engines returned the identical pair set "
          "(boundary ownership dedups straddlers exactly once)")
    shutdown_pools()


if __name__ == "__main__":
    main()
